(* End-to-end tests for LevelGrow / SkinnyMine / Diameter_index / Framework:
   soundness against ground-truth predicates, agreement of the three
   constraint-maintenance modes, unique generation, cluster disjointness,
   injected-pattern recovery, and the direct-mining framework checkers. *)

open Spm_graph
open Spm_pattern
open Spm_core

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let keys_of patterns =
  List.map (fun m -> Canon.key m.Skinny_mine.pattern) patterns
  |> List.sort_uniq String.compare

(* Brute force: all connected subgraph patterns (up to iso) of [g] that are
   l-long delta-skinny with support >= sigma. Exponential. *)
let brute_force_targets g ~l ~delta ~sigma ~max_edges =
  Framework.connected_patterns_upto g ~max_edges
  |> List.filter (fun p ->
         Pattern.size p >= 1
         && Skinny_mine.is_target p ~l ~delta
         && Support.single_graph p g >= sigma)
  |> List.map Canon.key |> List.sort_uniq String.compare

(* --- LevelGrow on a hand-built graph --- *)

let test_level_grow_bare_path () =
  (* Data = a single path; only pattern grown is the diameter itself. *)
  let g = Gen.path_graph [| 0; 1; 2; 3 |] in
  let r = Skinny_mine.mine g ~l:3 ~delta:2 ~sigma:1 in
  check "one pattern" 1 (List.length r.Skinny_mine.patterns);
  let m = List.hd r.Skinny_mine.patterns in
  check "support" 1 m.Skinny_mine.support;
  check "size" 3 (Pattern.size m.Skinny_mine.pattern)

let test_level_grow_with_twig () =
  (* Path 0-1-2-3-4 plus twig on middle vertex; delta=1, sigma=1. *)
  let g =
    Graph.Builder.of_edges ~labels:[| 0; 1; 1; 1; 2; 3 |]
      [ (0, 1); (1, 2); (2, 3); (3, 4); (2, 5) ]
  in
  let r = Skinny_mine.mine g ~l:4 ~delta:1 ~sigma:1 in
  (* Diameter path + path-with-twig. *)
  check "two patterns" 2 (List.length r.Skinny_mine.patterns);
  List.iter
    (fun m ->
      check_bool "is target" true
        (Skinny_mine.is_target m.Skinny_mine.pattern ~l:4 ~delta:1))
    r.Skinny_mine.patterns;
  (* delta=0 keeps only the bare diameter. *)
  let r0 = Skinny_mine.mine g ~l:4 ~delta:0 ~sigma:1 in
  check "delta=0" 1 (List.length r0.Skinny_mine.patterns)

let test_level_grow_multi_edge_twig () =
  (* Twig vertex 5 connected to diameter positions 1 and 2: reachable via a
     leaf extension plus a closing edge in the same level iteration. *)
  let g =
    Graph.Builder.of_edges ~labels:[| 0; 1; 1; 1; 2; 3 |]
      [ (0, 1); (1, 2); (2, 3); (3, 4); (1, 5); (2, 5) ]
  in
  let r = Skinny_mine.mine g ~l:4 ~delta:1 ~sigma:1 in
  let sizes =
    List.map (fun m -> Pattern.size m.Skinny_mine.pattern) r.Skinny_mine.patterns
    |> List.sort compare
  in
  (* Four length-4 paths exist (the main diameter and three routes through
     the twig vertex), each a cluster of its own; the main cluster grows the
     two single-twig-edge patterns and the both-edges pattern. *)
  Alcotest.(check (list int)) "pattern sizes" [ 4; 4; 4; 4; 5; 5; 6 ] sizes

(* --- Soundness on random graphs --- *)

let prop_skinny_mine_sound =
  QCheck.Test.make ~name:"every mined pattern is a frequent target pattern"
    ~count:20
    QCheck.(pair (int_range 8 14) (int_range 2 4))
    (fun (n, l) ->
      let g = Gen_qcheck.er ~seed:((n * 271) + l) ~n ~avg_degree:2.0 ~num_labels:2 in
      let r = Skinny_mine.mine g ~l ~delta:2 ~sigma:2 in
      List.for_all
        (fun m ->
          Skinny_mine.is_target m.Skinny_mine.pattern ~l ~delta:2
          && Support.single_graph m.Skinny_mine.pattern g
             = m.Skinny_mine.support
          && m.Skinny_mine.support >= 2)
        r.Skinny_mine.patterns)

let prop_skinny_mine_unique_generation =
  QCheck.Test.make ~name:"no two mined patterns are isomorphic" ~count:20
    QCheck.(pair (int_range 8 14) (int_range 2 4))
    (fun (n, l) ->
      let g = Gen_qcheck.er ~seed:((n * 17) + (l * 5)) ~n ~avg_degree:2.2 ~num_labels:2 in
      let r = Skinny_mine.mine g ~l ~delta:2 ~sigma:1 in
      let keys = List.map (fun m -> Canon.key m.Skinny_mine.pattern) r.Skinny_mine.patterns in
      List.length keys = List.length (List.sort_uniq String.compare keys))

let prop_skinny_clusters_canonical =
  QCheck.Test.make
    ~name:"each pattern's canonical diameter matches its cluster" ~count:20
    QCheck.(pair (int_range 8 13) (int_range 2 4))
    (fun (n, l) ->
      let g = Gen_qcheck.er ~seed:((n * 37) + (l * 11)) ~n ~avg_degree:2.0 ~num_labels:2 in
      let r = Skinny_mine.mine g ~l ~delta:2 ~sigma:1 in
      List.for_all
        (fun m ->
          let p = m.Skinny_mine.pattern in
          let cd = Canonical_diameter.compute p in
          let cd_labels =
            Path_pattern.canonical (Path_pattern.of_vertex_path p cd)
          in
          cd_labels = m.Skinny_mine.diameter_labels)
        r.Skinny_mine.patterns)

let prop_modes_agree =
  QCheck.Test.make
    ~name:"Naive and Exact constraint modes mine identical pattern sets"
    ~count:15
    QCheck.(pair (int_range 8 13) (int_range 2 4))
    (fun (n, l) ->
      let g = Gen_qcheck.er ~seed:((n * 301) + l) ~n ~avg_degree:2.2 ~num_labels:2 in
      let run mode =
        keys_of
          (Skinny_mine.mine
             ~config:{ Skinny_mine.Config.default with mode }
             g ~l ~delta:2 ~sigma:1)
            .Skinny_mine.patterns
      in
      run Constraints.Naive = run Constraints.Exact)

(* The literal Theorem-3 trigger of the paper (new diameters can only end at
   the head or tail, §3.4.3) is incomplete: a new same-length realizing path
   between two *twig* vertices can be lexicographically smaller than L
   without touching vH/vT, so Paper mode keeps patterns under a diameter
   that is no longer canonical — an over-acceptance that breaks cluster
   disjointness. We document it on an instance where it shows. *)
let test_paper_trigger_gap_documented () =
  let g = Gen_qcheck.er ~seed:((13 * 301) + 4) ~n:13 ~avg_degree:2.2 ~num_labels:2 in
  let run mode =
    keys_of
      (Skinny_mine.mine
         ~config:{ Skinny_mine.Config.default with mode }
         g ~l:4 ~delta:2 ~sigma:1)
        .Skinny_mine.patterns
  in
  let naive = run Constraints.Naive in
  let paper = run Constraints.Paper in
  check_bool "paper accepts a superset here" true
    (List.for_all (fun k -> List.mem k paper) naive);
  check_bool "paper over-accepts (documented gap)" true
    (List.length paper > List.length naive);
  (* The extra patterns are exactly those whose canonical diameter is NOT
     the cluster diameter. *)
  let full =
    Skinny_mine.mine
      ~config:{ Skinny_mine.Config.default with mode = Constraints.Paper }
      g ~l:4 ~delta:2 ~sigma:1
  in
  let bogus =
    List.filter
      (fun m ->
        let p = m.Skinny_mine.pattern in
        let cd = Canonical_diameter.compute p in
        Path_pattern.canonical (Path_pattern.of_vertex_path p cd)
        <> m.Skinny_mine.diameter_labels)
      full.Skinny_mine.patterns
  in
  check_bool "the extras are non-canonical cluster members" true
    (List.length bogus > 0)

(* --- Completeness against the specification semantics --- *)

(* The specification run explores EVERY extension order (no Panchor pruning)
   with naive full-recomputation constraint checks. The optimized default
   (anchored, Exact mode, incremental indices) must produce exactly the same
   pattern sets. *)
let test_spec_equivalence () =
  List.iteri
    (fun i (n, l) ->
      let g = Gen_qcheck.er ~seed:(1000 + (i * 31)) ~n ~avg_degree:2.0 ~num_labels:2 in
      let optimized =
        keys_of
          (Skinny_mine.mine
             ~config:
               { Skinny_mine.Config.default with prune_intermediate = false }
             g ~l ~delta:2 ~sigma:1)
            .Skinny_mine.patterns
      in
      let spec =
        keys_of
          (Skinny_mine.mine
             ~config:
               {
                 Skinny_mine.Config.default with
                 mode = Constraints.Naive;
                 prune_intermediate = false;
               }
             g ~l ~delta:2 ~sigma:1)
            .Skinny_mine.patterns
      in
      Alcotest.(check (list string))
        (Printf.sprintf "case %d (n=%d l=%d)" i n l)
        spec optimized)
    [ (7, 2); (8, 2); (8, 3); (9, 3); (9, 4); (10, 4); (10, 3); (7, 3) ]

(* Brute-force subgraph enumeration is a strict superset of what single-edge
   constraint-preserving growth can reach: the 4-cycle at l=2 needs its
   fourth vertex attached by two edges at once, every intermediate violating
   the diameter bound. This documents that the paper's Lemma 4
   (weak anti-monotonicity) fails on C4 — fC(C4)=1 at (l=2, delta=1) but
   every 3-edge subgraph of C4 is a 3-long path. SkinnyMine (the paper's and
   ours) therefore cannot mine it; the gap is inherent to the growth
   paradigm, not to our optimizations (the specification run misses it
   identically). *)
let test_c4_gap_documented () =
  let c4 = Gen.cycle_graph [| 0; 0; 0; 0 |] in
  check_bool "C4 is 2-long 1-skinny" true
    (Skinny_mine.is_target c4 ~l:2 ~delta:1);
  (* All 3-edge subpatterns of C4 are 3-long paths: Lemma 4 fails. *)
  List.iter
    (fun q ->
      check_bool "no 3-edge sub satisfies" false
        (Skinny_mine.is_target q ~l:2 ~delta:1))
    (Framework.immediate_subpatterns c4);
  (* Mining a data graph that IS a C4 at l=2: C4 itself is absent. *)
  let mined = Skinny_mine.mine c4 ~l:2 ~delta:1 ~sigma:1 in
  check_bool "C4 not minable (documented gap)" false
    (List.exists
       (fun m -> Canon.iso m.Skinny_mine.pattern c4)
       mined.Skinny_mine.patterns);
  let spec =
    Skinny_mine.mine
      ~config:{ Skinny_mine.Config.default with mode = Constraints.Naive }
      c4 ~l:2 ~delta:1 ~sigma:1
  in
  check_bool "specification run misses it identically" false
    (List.exists
       (fun m -> Canon.iso m.Skinny_mine.pattern c4)
       spec.Skinny_mine.patterns)

(* Mined patterns are always a subset of the brute-force target set, and on
   these instances the only brute-force targets ever missed are in the C4
   class (some vertex only attachable by >= 2 simultaneous edges). *)
let test_completeness_vs_brute_force () =
  List.iteri
    (fun i (n, l) ->
      let g = Gen_qcheck.er ~seed:(4000 + (i * 13)) ~n ~avg_degree:2.0 ~num_labels:2 in
      let delta = 2 in
      let mined =
        keys_of
          (Skinny_mine.mine
             ~config:
               { Skinny_mine.Config.default with prune_intermediate = false }
             g ~l ~delta ~sigma:1)
            .Skinny_mine.patterns
      in
      let expected = brute_force_targets g ~l ~delta ~sigma:1 ~max_edges:(Graph.m g) in
      List.iter
        (fun k ->
          if not (List.mem k expected) then
            Alcotest.failf "unsound pattern mined (case %d)" i)
        mined;
      (* Every missed pattern must be unreachable in principle: no immediate
         subpattern is a target with the same diameter length. *)
      let universe = Framework.connected_patterns_upto g ~max_edges:(Graph.m g) in
      let missed =
        List.filter (fun k -> not (List.mem k mined)) expected
        |> List.filter_map (fun k ->
               List.find_opt (fun p -> Canon.key p = k) universe)
      in
      let diam_labels q =
        let cd = Canonical_diameter.compute q in
        Path_pattern.canonical (Path_pattern.of_vertex_path q cd)
      in
      (* Misses are expected: the growth paradigm cannot reach patterns whose
         every same-diameter edge-deletion chain passes through a
         constraint-violating intermediate (the C4 class; see the C4 test and
         EXPERIMENTS.md). We bound the damage instead of asserting equality:
         every l-long path must be present (they are the Stage-I seeds), and
         every missed pattern must itself sit on a chain of missed
         same-diameter parents (no "orphan" miss directly above a mined
         pattern is allowed — that would be a bug, not a paradigm gap). *)
      List.iter
        (fun p ->
          let is_path =
            Pattern.size p = l && Graph.n p = l + 1 && Bfs.diameter p = l
          in
          if is_path then
            Alcotest.failf "case %d: missed a seed path" i;
          let mined_same_diam_parent =
            List.exists
              (fun q ->
                Skinny_mine.is_target q ~l ~delta
                && diam_labels q = diam_labels p
                && List.mem (Canon.key q) mined)
              (Framework.immediate_subpatterns p)
          in
          if mined_same_diam_parent then
            Alcotest.failf
              "case %d: missed a pattern one valid step above a mined one" i)
        missed)
    [ (7, 2); (8, 2); (8, 3); (9, 3); (9, 4) ]

(* --- Closed growth --- *)

let test_closed_growth_collapses_powerset () =
  (* A diameter path with k twigs appearing in two disjoint copies: complete
     semantics enumerates the 2^k twig subsets; closed growth reports only
     the maximal pattern. *)
  let pat =
    Graph.Builder.of_edges ~labels:[| 0; 1; 2; 3; 4; 5; 6; 7 |]
      [ (0, 1); (1, 2); (2, 3); (3, 4); (1, 5); (2, 6); (3, 7) ]
  in
  let b = Graph.Builder.create () in
  let st = Gen.rng 1 in
  ignore (Gen.inject st b ~pattern:pat ~copies:2 ());
  let g = Graph.Builder.freeze b in
  let complete = Skinny_mine.mine g ~l:4 ~delta:1 ~sigma:2 in
  let closed =
    Skinny_mine.mine
      ~config:{ Skinny_mine.Config.default with closed_growth = true }
      g ~l:4 ~delta:1 ~sigma:2
  in
  (* The main cluster alone contributes its 2^3 twig subsets to the complete
     answer (other length-4 paths through twigs seed further clusters). *)
  let complete_keys = keys_of complete.Skinny_mine.patterns in
  let subsets =
    (* All patterns obtained from pat by deleting a subset of its twigs. *)
    let twig_sets =
      [ []; [ 5 ]; [ 6 ]; [ 7 ]; [ 5; 6 ]; [ 5; 7 ]; [ 6; 7 ]; [ 5; 6; 7 ] ]
    in
    List.map
      (fun drop ->
        let keep =
          List.init 8 (fun v -> v) |> List.filter (fun v -> not (List.mem v drop))
        in
        Graph.induced pat (Array.of_list keep))
      twig_sets
  in
  check "complete contains the whole twig powerset" 8
    (List.length
       (List.filter (fun q -> List.mem (Canon.key q) complete_keys) subsets));
  (* Closed growth collapses each cluster to its maximal members: the full
     pattern is present, the proper subsets are not, and the total is far
     smaller than the complete answer. *)
  check_bool "closed is a strict subset" true
    (List.length closed.Skinny_mine.patterns
    < List.length complete.Skinny_mine.patterns);
  check_bool "closed contains the full pattern" true
    (List.exists
       (fun m -> Canon.iso m.Skinny_mine.pattern pat)
       closed.Skinny_mine.patterns);
  check "no proper twig subset survives closed growth" 1
    (List.length
       (List.filter
          (fun q ->
            List.exists
              (fun m -> Canon.iso m.Skinny_mine.pattern q)
              closed.Skinny_mine.patterns)
          subsets))

let prop_closed_growth_sound_and_subset =
  QCheck.Test.make
    ~name:"closed-growth output is a subset of complete output" ~count:15
    QCheck.(pair (int_range 8 13) (int_range 2 4))
    (fun (n, l) ->
      let g = Gen_qcheck.er ~seed:((n * 83) + l) ~n ~avg_degree:2.0 ~num_labels:2 in
      let complete = keys_of (Skinny_mine.mine g ~l ~delta:2 ~sigma:1).Skinny_mine.patterns in
      let closed =
        (Skinny_mine.mine
           ~config:{ Skinny_mine.Config.default with closed_growth = true }
           g ~l ~delta:2 ~sigma:1)
          .Skinny_mine.patterns
      in
      List.for_all
        (fun m ->
          List.mem (Canon.key m.Skinny_mine.pattern) complete
          && Skinny_mine.is_target m.Skinny_mine.pattern ~l ~delta:2)
        closed)

(* --- Injected patterns (sigma = 2) --- *)

let test_injection_recovery () =
  let st = Gen.rng 4242 in
  let bg = Gen.erdos_renyi st ~n:80 ~avg_degree:1.5 ~num_labels:10 in
  let b = Graph.Builder.of_graph bg in
  let pat = Gen.random_skinny_pattern st ~backbone:6 ~delta:1 ~twigs:3 ~num_labels:10 in
  ignore (Gen.inject st b ~pattern:pat ~copies:3 ());
  let g = Graph.Builder.freeze b in
  let r = Skinny_mine.mine g ~l:6 ~delta:2 ~sigma:2 in
  check_bool "injected pattern recovered" true
    (List.exists
       (fun m -> Canon.iso m.Skinny_mine.pattern pat)
       r.Skinny_mine.patterns)

let test_closed_only_filter () =
  (* Path + twig with equal support: the bare path is not closed. *)
  let g =
    Graph.Builder.of_edges ~labels:[| 0; 1; 1; 1; 2; 3 |]
      [ (0, 1); (1, 2); (2, 3); (3, 4); (2, 5) ]
  in
  let all = Skinny_mine.mine g ~l:4 ~delta:1 ~sigma:1 in
  let closed =
    Skinny_mine.mine
      ~config:{ Skinny_mine.Config.default with closed_only = true }
      g ~l:4 ~delta:1 ~sigma:1
  in
  check "all" 2 (List.length all.Skinny_mine.patterns);
  check "closed" 1 (List.length closed.Skinny_mine.patterns);
  check "closed is the larger" 5
    (Pattern.size (List.hd closed.Skinny_mine.patterns).Skinny_mine.pattern)

let test_max_patterns_cap () =
  let g = Gen_qcheck.er ~seed:17 ~n:30 ~avg_degree:3.0 ~num_labels:1 in
  let r =
    Skinny_mine.mine
      ~config:{ Skinny_mine.Config.default with max_patterns = Some 5 }
      g ~l:2 ~delta:2 ~sigma:1
  in
  check_bool "cap respected" true (List.length r.Skinny_mine.patterns <= 5)

(* --- Transactions --- *)

let test_transaction_setting () =
  let st = Gen.rng 7 in
  let pat = Gen.path_graph [| 2; 3; 4; 5 |] in
  let make_tx with_pat =
    let bg = Gen.erdos_renyi st ~n:20 ~avg_degree:1.5 ~num_labels:6 in
    if with_pat then begin
      let b = Graph.Builder.of_graph bg in
      ignore (Gen.inject st b ~pattern:pat ~copies:1 ());
      Graph.Builder.freeze b
    end
    else bg
  in
  let db = [ make_tx true; make_tx true; make_tx true; make_tx false ] in
  let r = Skinny_mine.mine_transactions db ~l:3 ~delta:1 ~sigma:3 in
  let found =
    List.find_opt
      (fun m -> Canon.iso m.Skinny_mine.pattern pat)
      r.Skinny_mine.patterns
  in
  (match found with
  | Some m -> check "transaction support" 3 m.Skinny_mine.support
  | None -> Alcotest.fail "injected path not found across transactions");
  (* Every reported support counts transactions, hence <= 4. *)
  List.iter
    (fun m -> check_bool "support <= #tx" true (m.Skinny_mine.support <= 4))
    r.Skinny_mine.patterns

(* --- Diameter index --- *)

let test_diameter_index_requests () =
  let g = Gen_qcheck.er ~seed:3 ~n:25 ~avg_degree:2.5 ~num_labels:2 in
  let idx = Diameter_index.build g ~sigma:2 ~l_max:6 in
  List.iter
    (fun l ->
      let direct = keys_of (Skinny_mine.mine g ~l ~delta:2 ~sigma:2).Skinny_mine.patterns in
      let served = keys_of (Diameter_index.request idx ~l ~delta:2).Skinny_mine.patterns in
      Alcotest.(check (list string))
        (Printf.sprintf "index request l=%d" l)
        direct served)
    [ 2; 3; 4; 5; 6 ];
  (* Range request = union of individual requests. *)
  let range = keys_of (Diameter_index.request_range idx ~l_min:3 ~l_max:5 ~delta:2).Skinny_mine.patterns in
  let union =
    List.concat_map
      (fun l -> keys_of (Diameter_index.request idx ~l ~delta:2).Skinny_mine.patterns)
      [ 3; 4; 5 ]
    |> List.sort_uniq String.compare
  in
  Alcotest.(check (list string)) "range = union" union range

(* --- Framework --- *)

let test_framework_skinny_agrees () =
  let g = Gen_qcheck.er ~seed:19 ~n:20 ~avg_degree:2.2 ~num_labels:2 in
  let via_framework =
    Framework.Skinny.mine g ~sigma:2 { Framework.Skinny.l = 3; delta = 2 }
    |> List.map (fun (p, _) -> Canon.key p)
    |> List.sort_uniq String.compare
  in
  let direct = keys_of (Skinny_mine.mine g ~l:3 ~delta:2 ~sigma:2).Skinny_mine.patterns in
  Alcotest.(check (list string)) "functor = direct" direct via_framework

let test_framework_properties () =
  let g = Gen_qcheck.er ~seed:23 ~n:8 ~avg_degree:2.5 ~num_labels:2 in
  let universe = Framework.connected_patterns_upto g ~max_edges:4 in
  check_bool "universe non-trivial" true (List.length universe > 5);
  (* MaxDegree <= K satisfies everything downward: not reducible (§5.2). *)
  let max_degree_pred p =
    Graph.n p = 0
    || Array.for_all (fun v -> v <= 3)
         (Array.init (Graph.n p) (fun v -> Graph.degree p v))
  in
  check_bool "MaxDegree not reducible" false
    (Framework.is_reducible ~pred:max_degree_pred ~universe);
  (* "All degrees equal" is not continuous (§5.3): a triangle qualifies but
     no 2-edge subpattern does... include a triangle in the universe. *)
  let tri = Graph.Builder.of_edges ~labels:[| 0; 0; 0 |] [ (0, 1); (1, 2); (0, 2) ] in
  let universe_t = tri :: universe in
  let equal_degree_pred p =
    Graph.n p > 0
    &&
    let d0 = Graph.degree p 0 in
    Array.for_all (fun v -> Graph.degree p v = d0)
      (Array.init (Graph.n p) (fun v -> v))
    && Graph.m p >= 1
  in
  check_bool "equal-degree not continuous" false
    (Framework.is_continuous ~pred:equal_degree_pred ~universe:universe_t);
  (* The skinny constraint is reducible (paths of length l are minimal). *)
  let skinny_pred p = Skinny_mine.is_target p ~l:2 ~delta:1 in
  check_bool "skinny reducible" true
    (Framework.is_reducible ~pred:skinny_pred ~universe);
  (* Continuity holds on cycle-free universes... *)
  let tree = Gen_qcheck.tree ~seed:29 ~n:8 ~num_labels:2 in
  let tree_universe = Framework.connected_patterns_upto tree ~max_edges:4 in
  check_bool "skinny continuous on a tree universe" true
    (Framework.is_continuous ~pred:skinny_pred ~universe:tree_universe);
  (* ...but FAILS as soon as the universe contains a 4-cycle: C4 is 2-long
     1-skinny, yet all its 3-edge subpatterns are 3-long paths. This
     contradicts the paper's Lemma 4 / continuity claim for the skinny
     constraint — a reproduction finding documented in EXPERIMENTS.md. *)
  let c4 = Gen.cycle_graph [| 0; 0; 0; 0 |] in
  check_bool "skinny NOT continuous once C4 is in the universe" false
    (Framework.is_continuous ~pred:skinny_pred ~universe:(c4 :: universe))

let test_framework_neighborhood_agrees () =
  let g = Gen_qcheck.er ~seed:31 ~n:16 ~avg_degree:2.2 ~num_labels:2 in
  let via_framework =
    Framework.Neighborhood.mine g ~sigma:2
      { Framework.Neighborhood.r = 2; center = None }
    |> List.map (fun (p, _) -> Canon.key p)
    |> List.sort_uniq String.compare
  in
  let config =
    {
      Skinny_mine.Config.default with
      family = Constraints.Neighborhood { center = None };
    }
  in
  let direct =
    keys_of (Skinny_mine.mine ~config g ~l:0 ~delta:2 ~sigma:2).Skinny_mine.patterns
  in
  Alcotest.(check (list string)) "functor = direct" direct via_framework

(* The r-neighborhood family QUALIFIES for the direct-mining framework —
   the committed counterpart to the §5.2/§5.3 negative controls above
   (MaxDegree <= K is not reducible, all-degrees-equal is not continuous).
   Reducibility: a lone edge lies within radius r of either endpoint and
   its immediate subpatterns are edgeless, so single edges are the minimal
   witnesses. Continuity: deleting a non-BFS-tree edge only shrinks
   distances to the center, and a tree sheds a deepest leaf edge — so it
   holds even on universes with cycles, where the skinny family's
   continuity breaks (C4). *)
let test_framework_neighborhood_qualifies () =
  let g = Gen_qcheck.er ~seed:23 ~n:8 ~avg_degree:2.5 ~num_labels:2 in
  let c4 = Gen.cycle_graph [| 0; 0; 0; 0 |] in
  let tri =
    Graph.Builder.of_edges ~labels:[| 0; 0; 0 |] [ (0, 1); (1, 2); (0, 2) ]
  in
  let universe =
    c4 :: tri :: Framework.connected_patterns_upto g ~max_edges:4
  in
  let pred r p = Skinny_mine.is_neighborhood_target p ~r in
  check_bool "neighborhood reducible (r=1)" true
    (Framework.is_reducible ~pred:(pred 1) ~universe);
  check_bool "neighborhood reducible (r=2)" true
    (Framework.is_reducible ~pred:(pred 2) ~universe);
  List.iter
    (fun w -> check "every minimal witness is a single edge" 1 (Pattern.size w))
    (Framework.reducible_witnesses ~pred:(pred 2) ~universe);
  check_bool "neighborhood continuous (r=1), cycles included" true
    (Framework.is_continuous ~pred:(pred 1) ~universe);
  check_bool "neighborhood continuous (r=2), cycles included" true
    (Framework.is_continuous ~pred:(pred 2) ~universe);
  (* The centered variant stays qualified: the same arguments run through
     any fixed admissible center. *)
  let cpred p = Skinny_mine.is_neighborhood_target ~center:0 p ~r:1 in
  check_bool "centered reducible" true
    (Framework.is_reducible ~pred:cpred ~universe);
  check_bool "centered continuous" true
    (Framework.is_continuous ~pred:cpred ~universe)

let test_immediate_subpatterns () =
  let tri = Graph.Builder.of_edges ~labels:[| 0; 0; 0 |] [ (0, 1); (1, 2); (0, 2) ] in
  (* Removing any triangle edge leaves the same 2-edge path. *)
  check "triangle subs" 1 (List.length (Framework.immediate_subpatterns tri));
  let edge = Pattern.singleton_edge 0 1 in
  check "edge subs" 2 (List.length (Framework.immediate_subpatterns edge));
  let same = Pattern.singleton_edge 0 0 in
  check "uniform edge subs" 1 (List.length (Framework.immediate_subpatterns same))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "skinny"
    [
      ( "level_grow",
        [
          Alcotest.test_case "bare path" `Quick test_level_grow_bare_path;
          Alcotest.test_case "with twig" `Quick test_level_grow_with_twig;
          Alcotest.test_case "multi-edge twig" `Quick test_level_grow_multi_edge_twig;
        ] );
      ( "skinny_mine",
        [
          Alcotest.test_case "spec equivalence" `Slow test_spec_equivalence;
          Alcotest.test_case "C4 gap documented" `Quick test_c4_gap_documented;
          Alcotest.test_case "paper trigger gap documented" `Quick
            test_paper_trigger_gap_documented;
          Alcotest.test_case "completeness vs brute force" `Slow
            test_completeness_vs_brute_force;
          Alcotest.test_case "injection recovery" `Quick test_injection_recovery;
          Alcotest.test_case "closed growth powerset" `Quick
            test_closed_growth_collapses_powerset;
          Alcotest.test_case "closed-only" `Quick test_closed_only_filter;
          Alcotest.test_case "max patterns cap" `Quick test_max_patterns_cap;
          Alcotest.test_case "transactions" `Quick test_transaction_setting;
        ] );
      ( "diameter_index",
        [ Alcotest.test_case "requests" `Quick test_diameter_index_requests ] );
      ( "framework",
        [
          Alcotest.test_case "skinny functor" `Quick test_framework_skinny_agrees;
          Alcotest.test_case "property checkers" `Quick test_framework_properties;
          Alcotest.test_case "neighborhood functor" `Quick
            test_framework_neighborhood_agrees;
          Alcotest.test_case "neighborhood qualifies" `Quick
            test_framework_neighborhood_qualifies;
          Alcotest.test_case "immediate subpatterns" `Quick test_immediate_subpatterns;
        ] );
      qsuite "props"
        [
          prop_skinny_mine_sound;
          prop_skinny_mine_unique_generation;
          prop_skinny_clusters_canonical;
          prop_modes_agree;
          prop_closed_growth_sound_and_subset;
        ];
    ]
