(* Tests for the workload generators: Table 1/3 settings, the transaction
   setup, and the DBLP-like / Weibo-like synthetic data. *)

open Spm_graph
open Spm_workload

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_gid_settings () =
  List.iter
    (fun g ->
      let d = Settings.gid ~scale:0.2 ~seed:7 g in
      check_bool "graph non-empty" true (Graph.n d.Settings.graph > 50);
      check "five long patterns" 5 (List.length d.Settings.long_patterns);
      List.iter
        (fun inj ->
          let p = inj.Settings.pattern in
          check_bool "injected long is skinny" true
            (Spm_core.Canonical_diameter.is_skinny p ~delta:2);
          check "placements = copies" inj.Settings.copies
            (Array.length inj.Settings.placements);
          (* Each placement is a genuine embedding. *)
          Array.iter
            (fun map ->
              Graph.iter_edges
                (fun u v ->
                  check_bool "edge placed" true
                    (Graph.has_edge d.Settings.graph map.(u) map.(v)))
                p)
            inj.Settings.placements)
        d.Settings.long_patterns)
    [ 1; 2; 3; 4; 5 ]

let test_gid_differences () =
  let d1 = Settings.gid ~scale:0.2 ~seed:3 1 in
  let d2 = Settings.gid ~scale:0.2 ~seed:3 2 in
  let avg_deg d =
    2.0 *. float_of_int (Graph.m d.Settings.graph)
    /. float_of_int (Graph.n d.Settings.graph)
  in
  check_bool "GID2 denser than GID1" true (avg_deg d2 > avg_deg d1 +. 0.5);
  let d5 = Settings.gid ~scale:0.2 ~seed:3 5 in
  check "GID5 has 20 short patterns" 20 (List.length d5.Settings.short_patterns)

let test_skinniness_probe () =
  let p = Settings.skinniness_probe ~scale:0.2 ~seed:5 () in
  check "ten pids" 10 (List.length p.Settings.pids);
  check "ten injected" 10 (List.length p.Settings.dataset.Settings.long_patterns);
  (* PIDs 1-5 have strictly decreasing diameters; 6-10 share a diameter. *)
  let diams = List.map (fun (_, _, d) -> d) p.Settings.pids in
  let first5 = List.filteri (fun i _ -> i < 5) diams in
  let rec strictly_decreasing = function
    | a :: (b :: _ as rest) -> a > b && strictly_decreasing rest
    | _ -> true
  in
  check_bool "decreasing skinniness" true (strictly_decreasing first5)

let test_transaction_setting () =
  let t = Settings.transaction_setting ~scale:0.1 ~extra_small:12 ~seed:11 () in
  check "ten transactions" 10 (List.length t.Settings.transactions);
  check "five long" 5 (List.length t.Settings.injected_long);
  check "extra small" 12 (List.length t.Settings.injected_small);
  (* Every long pattern appears in at least 5 transactions. *)
  List.iter
    (fun p ->
      let cnt = Spm_pattern.Support.transaction p t.Settings.transactions in
      check_bool "support >= 5" true (cnt >= 5))
    t.Settings.injected_long

let test_dblp_like () =
  let authors = Dblp_like.generate ~num_authors:30 ~seed:2 () in
  check "thirty authors" 30 (List.length authors);
  List.iter
    (fun a ->
      let tl = Dblp_like.timeline_of a in
      check "timeline length" a.Dblp_like.career_years (List.length tl);
      (* The timeline is a path: consecutive years adjacent. *)
      let arr = Array.of_list tl in
      for i = 0 to Array.length arr - 2 do
        check_bool "consecutive years adjacent" true
          (Graph.has_edge a.Dblp_like.graph arr.(i) arr.(i + 1))
      done;
      (* Collaboration nodes are leaves attached to years. *)
      Graph.iter_vertices
        (fun v ->
          if Graph.label a.Dblp_like.graph v <> Dblp_like.year_label then begin
            check "collab degree 1" 1 (Graph.degree a.Dblp_like.graph v);
            let nbr = (Graph.adj a.Dblp_like.graph v).(0) in
            check "attached to a year" Dblp_like.year_label
              (Graph.label a.Dblp_like.graph nbr)
          end)
        a.Dblp_like.graph)
    authors

let test_dblp_labels () =
  check "P3" 12 (Dblp_like.collab_label ~cls:'P' ~level:3);
  check "B1" 1 (Dblp_like.collab_label ~cls:'B' ~level:1);
  Alcotest.(check string) "name" "S2" (Dblp_like.label_name (Dblp_like.collab_label ~cls:'S' ~level:2));
  Alcotest.(check string) "year" "YEAR" (Dblp_like.label_name Dblp_like.year_label)

let test_weibo_like () =
  let convs = Weibo_like.generate ~num_conversations:10 ~size:60 ~seed:4 () in
  check "ten conversations" 10 (List.length convs);
  let motif = Weibo_like.diffusion_motif ~chain:13 in
  check_bool "motif is 13-long 3-skinny" true
    (Spm_core.Canonical_diameter.is_l_long_delta_skinny motif ~l:13 ~delta:3
    || Spm_core.Canonical_diameter.is_skinny motif ~delta:3);
  List.iter
    (fun c ->
      check_bool "conversation connected" true (Bfs.is_connected c.Weibo_like.graph);
      check "root label" Weibo_like.root_label
        (Graph.label c.Weibo_like.graph c.Weibo_like.root);
      if c.Weibo_like.has_motif then
        check_bool "motif embedded" true
          (Spm_pattern.Subiso.exists ~pattern:motif ~target:c.Weibo_like.graph))
    convs

let test_weibo_motif_frequency () =
  let convs = Weibo_like.generate ~num_conversations:10 ~size:50 ~motif_fraction:0.5 ~seed:6 () in
  let motif = Weibo_like.diffusion_motif ~chain:9 in
  ignore motif;
  let with_motif = List.filter (fun c -> c.Weibo_like.has_motif) convs in
  check "half carry the motif" 5 (List.length with_motif)

(* --- Byte determinism ---

   A fixed seed must reproduce each workload byte-for-byte (via the
   canonical Io text form): recorded experiment configs and the committed
   corpus both rely on generator output being a pure function of the
   seed. *)

let test_byte_determinism () =
  let gid_bytes () =
    let d = Settings.gid ~scale:0.15 ~seed:21 3 in
    Io.to_string d.Settings.graph
  in
  Alcotest.(check string) "gid bytes stable" (gid_bytes ()) (gid_bytes ());
  let dblp_bytes () =
    Dblp_like.generate ~num_authors:8 ~seed:22 ()
    |> List.map (fun a -> Io.to_string a.Dblp_like.graph)
    |> String.concat "\n"
  in
  Alcotest.(check string) "dblp bytes stable" (dblp_bytes ()) (dblp_bytes ());
  let weibo_bytes () =
    Weibo_like.generate ~num_conversations:4 ~size:40 ~seed:23 ()
    |> List.map (fun c -> Io.to_string c.Weibo_like.graph)
    |> String.concat "\n"
  in
  Alcotest.(check string) "weibo bytes stable" (weibo_bytes ()) (weibo_bytes ());
  let tx_bytes () =
    let t = Settings.transaction_setting ~scale:0.1 ~extra_small:3 ~seed:24 () in
    t.Settings.transactions |> List.map Io.to_string |> String.concat "\n"
  in
  Alcotest.(check string) "transaction bytes stable" (tx_bytes ()) (tx_bytes ())

(* --- key samplers (cluster load generator) --- *)

let draw_freqs sampler ~draws =
  let freqs = Array.make (Sampler.n sampler) 0 in
  for _ = 1 to draws do
    let k = Sampler.next sampler in
    check_bool "key in range" true (k >= 0 && k < Sampler.n sampler);
    freqs.(k) <- freqs.(k) + 1
  done;
  freqs

let test_sampler_determinism () =
  let seq s = List.init 200 (fun _ -> Sampler.next s) in
  Alcotest.(check (list int))
    "uniform sequence is a function of the seed"
    (seq (Sampler.uniform ~seed:42 ~n:100))
    (seq (Sampler.uniform ~seed:42 ~n:100));
  Alcotest.(check (list int))
    "zipf sequence is a function of the seed"
    (seq (Sampler.zipf ~s:1.1 ~seed:42 ~n:100 ()))
    (seq (Sampler.zipf ~s:1.1 ~seed:42 ~n:100 ()));
  check_bool "different seeds diverge" true
    (seq (Sampler.zipf ~seed:1 ~n:100 ()) <> seq (Sampler.zipf ~seed:2 ~n:100 ()))

let test_sampler_uniform_shape () =
  let freqs = draw_freqs (Sampler.uniform ~seed:9 ~n:10) ~draws:10_000 in
  (* Expected 1000 per key; 3-sigma is about +-95. Loose bounds: no key
     should stray past 25%. *)
  Array.iter
    (fun f -> check_bool "uniform bucket near expectation" true (f > 750 && f < 1250))
    freqs

let test_sampler_zipf_shape () =
  let n = 50 in
  let freqs = draw_freqs (Sampler.zipf ~s:1.2 ~seed:11 ~n ()) ~draws:20_000 in
  (* Hotness-ranked: the head dominates, frequencies decay down the ranks,
     and the top decile carries most of the mass. *)
  check_bool "rank 0 beats rank 9" true (freqs.(0) > 2 * freqs.(9));
  check_bool "rank 9 beats rank 49" true (freqs.(9) > freqs.(49));
  let top5 = Array.fold_left ( + ) 0 (Array.sub freqs 0 5) in
  check_bool "top 10% of keys draw > 40% of load" true (top5 * 5 > 20_000 * 2)

let prop_zipf_head_dominates =
  QCheck.Test.make ~name:"zipf head outdraws tail for every seed" ~count:30
    QCheck.(pair small_nat (int_range 10 80))
    (fun (seed, n) ->
      let freqs = draw_freqs (Sampler.zipf ~s:1.2 ~seed ~n ()) ~draws:4_000 in
      freqs.(0) > freqs.(n - 1)
      && Array.fold_left ( + ) 0 freqs = 4_000)

let prop_uniform_in_range =
  QCheck.Test.make ~name:"uniform keys always in range" ~count:50
    QCheck.(pair small_nat (int_range 1 64))
    (fun (seed, n) ->
      let s = Sampler.uniform ~seed ~n in
      List.for_all (fun _ -> let k = Sampler.next s in k >= 0 && k < n)
        (List.init 500 Fun.id))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "workload"
    [
      ( "settings",
        [
          Alcotest.test_case "gid datasets" `Quick test_gid_settings;
          Alcotest.test_case "gid differences" `Quick test_gid_differences;
          Alcotest.test_case "skinniness probe" `Quick test_skinniness_probe;
          Alcotest.test_case "transaction setting" `Quick test_transaction_setting;
          Alcotest.test_case "byte determinism" `Quick test_byte_determinism;
        ] );
      ( "dblp",
        [
          Alcotest.test_case "career graphs" `Quick test_dblp_like;
          Alcotest.test_case "labels" `Quick test_dblp_labels;
        ] );
      ( "weibo",
        [
          Alcotest.test_case "conversations" `Quick test_weibo_like;
          Alcotest.test_case "motif frequency" `Quick test_weibo_motif_frequency;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "determinism" `Quick test_sampler_determinism;
          Alcotest.test_case "uniform shape" `Quick test_sampler_uniform_shape;
          Alcotest.test_case "zipf shape" `Quick test_sampler_zipf_shape;
        ] );
      qsuite "sampler-props" [ prop_zipf_head_dominates; prop_uniform_in_range ];
    ]
