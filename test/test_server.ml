(* SkinnyServe: LRU unit behaviour, the query planner's pruning index,
   protocol codec round trips, and the headline end-to-end guarantee — a
   server on an ephemeral port answers mine/lookup/containment queries
   bit-identically to the direct library calls, with the LRU serving
   repeats (asserted via the per-request stats). *)

open Spm_graph
open Spm_core
module Codec = Spm_store.Codec
module Store = Spm_store.Store
module Lru = Spm_server.Lru
module Sig_index = Spm_server.Sig_index
module Protocol = Spm_server.Protocol
module Server = Spm_server.Server
module Client = Spm_server.Client

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- LRU --- *)

let test_lru_basics () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  check "len" 2 (Lru.length c);
  (* Touch "a" so "b" is the eviction victim. *)
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find c "a");
  Lru.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Lru.find c "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Lru.find c "c");
  (* Overwrite keeps the size and updates the value. *)
  Lru.add c "c" 33;
  check "len after overwrite" 2 (Lru.length c);
  Alcotest.(check (option int)) "overwritten" (Some 33) (Lru.find c "c");
  Lru.clear c;
  check "cleared" 0 (Lru.length c)

let test_lru_capacity_one () =
  let c = Lru.create ~capacity:1 in
  Lru.add c 1 "x";
  Lru.add c 2 "y";
  Alcotest.(check (option string)) "1 evicted" None (Lru.find c 1);
  Alcotest.(check (option string)) "2 kept" (Some "y") (Lru.find c 2);
  check_bool "mem does not promote" true (Lru.mem c 2)

let test_lru_churn () =
  let c = Lru.create ~capacity:8 in
  for i = 0 to 999 do
    Lru.add c (i mod 16) i
  done;
  check_bool "bounded" true (Lru.length c <= 8);
  (* The most recent key must be present. *)
  check_bool "recent key present" true (Lru.mem c (999 mod 16))

(* --- a mined corpus to serve --- *)

let serving_graph seed =
  let st = Gen.rng seed in
  let bg = Gen.erdos_renyi st ~n:110 ~avg_degree:2.0 ~num_labels:12 in
  let b = Graph.Builder.of_graph bg in
  for _ = 1 to 3 do
    let p =
      Gen.random_skinny_pattern st ~backbone:4 ~delta:1 ~twigs:2 ~num_labels:12
    in
    ignore (Gen.inject st b ~pattern:p ~copies:3 ())
  done;
  Graph.Builder.freeze b

let corpus =
  lazy
    (let g = serving_graph 2013 in
     let r = Skinny_mine.mine g ~l:4 ~delta:2 ~sigma:2 in
     (g, r))

let corpus_store () =
  let g, r = Lazy.force corpus in
  Store.of_result ~graph:g ~l:4 ~delta:2 ~sigma:2 ~closed_growth:false r

(* Byte-level identity of a mined list: full pattern text, support, levels,
   diameter labels — the strongest equality we can ask of the wire. *)
let render (ms : Skinny_mine.mined list) =
  let b = Buffer.create 4096 in
  List.iter
    (fun (m : Skinny_mine.mined) ->
      Buffer.add_string b (Io.to_string m.pattern);
      Buffer.add_string b (Printf.sprintf "support %d\n" m.support);
      Buffer.add_string b
        (Printf.sprintf "levels %s\n"
           (String.concat " " (Array.to_list (Array.map string_of_int m.levels))));
      Buffer.add_string b
        (Printf.sprintf "diam %s\n\n"
           (String.concat " "
              (Array.to_list (Array.map string_of_int m.diameter_labels)))))
    ms;
  Buffer.contents b

(* --- Sig_index --- *)

let test_sig_index_lookup () =
  let s = corpus_store () in
  let idx = Sig_index.build s.Store.patterns in
  check "size" (List.length s.Store.patterns) (Sig_index.size idx);
  (* No filters: everything, in corpus order. *)
  Alcotest.(check string) "identity lookup" (render s.Store.patterns)
    (render (Sig_index.lookup idx));
  (* Support filter agrees with the naive filter. *)
  let naive p = List.filter p s.Store.patterns in
  List.iter
    (fun t ->
      Alcotest.(check string)
        (Printf.sprintf "min_support %d" t)
        (render (naive (fun (m : Skinny_mine.mined) -> m.support >= t)))
        (render (Sig_index.lookup ~min_support:t idx)))
    [ 2; 3; 4 ];
  (* Length filter: the corpus is all l=4. *)
  check "length 4 keeps all" (Sig_index.size idx)
    (List.length (Sig_index.lookup ~length:4 idx));
  check "length 3 keeps none" 0 (List.length (Sig_index.lookup ~length:3 idx));
  (* Exact label-multiset lookup: each pattern finds itself. *)
  List.iter
    (fun (m : Skinny_mine.mined) ->
      let labels = Array.to_list (Graph.labels m.Skinny_mine.pattern) in
      let hits = Sig_index.lookup ~labels idx in
      check_bool "self found by own multiset" true
        (List.exists
           (fun (m' : Skinny_mine.mined) ->
             render [ m' ] = render [ m ])
           hits))
    s.Store.patterns

let test_sig_index_containment () =
  let s = corpus_store () in
  let idx = Sig_index.build s.Store.patterns in
  let targets =
    (* Each mined pattern as a target graph, plus a couple of random ones. *)
    List.filteri (fun i _ -> i < 5)
      (List.map (fun (m : Skinny_mine.mined) -> m.pattern) s.Store.patterns)
    @ [ serving_graph 99; Gen.erdos_renyi (Gen.rng 5) ~n:15 ~avg_degree:2.0 ~num_labels:3 ]
  in
  List.iter
    (fun target ->
      let naive =
        List.filter
          (fun (m : Skinny_mine.mined) ->
            Spm_pattern.Subiso.exists ~pattern:m.pattern ~target)
          s.Store.patterns
      in
      let via_index = Sig_index.contained_in idx target in
      Alcotest.(check string) "containment = naive subiso over corpus"
        (render naive) (render via_index);
      (* The pruning stage never drops a real hit. *)
      let candidates = Sig_index.containment_candidates idx target in
      check_bool "candidates superset of hits" true
        (List.for_all
           (fun (h : Skinny_mine.mined) ->
             List.exists (fun (c : Skinny_mine.mined) -> c == h) candidates)
           naive))
    targets

(* --- protocol codec --- *)

let test_protocol_roundtrip () =
  let g, _ = Lazy.force corpus in
  let reqs =
    [ Protocol.Ping; Protocol.Load_store "/tmp/x.spm";
      Protocol.Mine { l = 4; delta = 2; sigma = 2; closed_growth = true; family = Spm_core.Constraints.Skinny };
      (* v5 tag-11 requests: the neighborhood family, any and fixed center. *)
      Protocol.Mine
        { l = 0; delta = 2; sigma = 1; closed_growth = false;
          family = Spm_core.Constraints.Neighborhood { center = None } };
      Protocol.Mine
        { l = 0; delta = 1; sigma = 2; closed_growth = true;
          family = Spm_core.Constraints.Neighborhood { center = Some 3 } };
      Protocol.Lookup
        { min_support = Some 3; max_support = None; length = Some 4;
          labels = Some [ 1; 1; 2 ] };
      Protocol.Contains g; Protocol.Stats; Protocol.Shutdown;
      Protocol.Progress; Protocol.Cancel ]
  in
  List.iter
    (fun req ->
      let req' = Protocol.decode_request (Protocol.encode_request req) in
      (* Contains carries a graph: compare textually. *)
      match (req, req') with
      | Protocol.Contains a, Protocol.Contains b ->
        Alcotest.(check string) "contains graph" (Io.to_string a) (Io.to_string b)
      | a, b -> check_bool "request round trip" true (a = b))
    reqs;
  let s = corpus_store () in
  let ok = Spm_engine.Run.Ok in
  let resps =
    [ Protocol.response ~seconds:0.25 ~status:ok Protocol.Pong;
      Protocol.response ~cache_hit:true
        (Protocol.Patterns s.Store.patterns);
      Protocol.response ~seconds:1e-6 (Protocol.Loaded 17);
      Protocol.response
        (Protocol.Stats_reply
           { requests = 5; cache_hits = 2; errors = 1; store_patterns = 17;
             uptime_seconds = 1.5; service_seconds = 0.125 });
      Protocol.response Protocol.Bye;
      Protocol.response ~status:Spm_engine.Run.Timeout
        (Protocol.Patterns s.Store.patterns);
      Protocol.response ~seconds:0.5 ~status:Spm_engine.Run.Cancelled
        (Protocol.Progress_reply
           { running = true; candidates = 12; emitted = 3; level = 5;
             elapsed_seconds = 0.25 });
      Protocol.response (Protocol.Cancel_ack true);
      Protocol.response (Protocol.Error "boom");
      (* v4 Partial envelope: degraded answer naming its missing shards. *)
      Protocol.response ~unreachable:[ "shard1"; "shard3" ]
        (Protocol.Patterns s.Store.patterns) ]
  in
  List.iter
    (fun resp ->
      let resp' = Protocol.decode_response (Protocol.encode_response resp) in
      check_bool "envelope" true
        (resp.Protocol.cache_hit = resp'.Protocol.cache_hit
        && resp.Protocol.seconds = resp'.Protocol.seconds
        && resp.Protocol.status = resp'.Protocol.status
        && resp.Protocol.unreachable = resp'.Protocol.unreachable);
      match (resp.Protocol.payload, resp'.Protocol.payload) with
      | Protocol.Patterns a, Protocol.Patterns b ->
        Alcotest.(check string) "patterns payload" (render a) (render b)
      | a, b -> check_bool "payload round trip" true (a = b))
    resps

let test_garbage_rejected () =
  check_bool "garbage request" true
    (match Protocol.decode_request "\xFF\x00garbage" with
    | _ -> false
    | exception Codec.Corrupt _ -> true);
  check_bool "empty response" true
    (match Protocol.decode_response "" with
    | _ -> false
    | exception Codec.Corrupt _ -> true)

(* --- in-process dispatch (no socket) --- *)

let test_handle_dispatch () =
  let s = corpus_store () in
  let srv = Server.create ~jobs:1 () in
  Server.set_store srv s;
  (* Mine with the store's own parameters: answered from the resident set. *)
  let mine_req =
    Protocol.Mine { l = 4; delta = 2; sigma = 2; closed_growth = false; family = Spm_core.Constraints.Skinny }
  in
  (match (Server.handle srv mine_req).Protocol.payload with
  | Protocol.Patterns ms ->
    Alcotest.(check string) "resident store served verbatim"
      (render s.Store.patterns) (render ms)
  | _ -> Alcotest.fail "expected Patterns");
  (* Identical repeat: LRU hit. *)
  let again = Server.handle srv mine_req in
  check_bool "second identical query is a cache hit" true again.Protocol.cache_hit;
  (* Errors are answered, counted, and never cached. *)
  (match (Server.handle srv (Protocol.Load_store "/no/such/file.spm")).Protocol.payload with
  | Protocol.Error _ -> ()
  | _ -> Alcotest.fail "expected Error");
  let st = Server.stats srv in
  check "requests counted" 3 st.Protocol.requests;
  check "one hit" 1 st.Protocol.cache_hits;
  check "one error" 1 st.Protocol.errors

(* --- end to end over TCP --- *)

let test_end_to_end () =
  let g, direct = Lazy.force corpus in
  let s = corpus_store () in
  let srv = Server.create ~jobs:2 () in
  Server.set_store srv s;
  let fd, port = Server.listen ~port:0 () in
  let server_thread = Thread.create (fun () -> Server.serve srv fd) () in
  Fun.protect
    ~finally:(fun () -> Thread.join server_thread)
    (fun () ->
      Client.with_connection ~port (fun c ->
          Client.ping c;
          (* Mine over the wire = direct library call, byte for byte. *)
          let served =
            Client.mine c { Protocol.l = 4; delta = 2; sigma = 2; closed_growth = false; family = Spm_core.Constraints.Skinny }
          in
          Alcotest.(check string) "wire mine = direct mine"
            (render direct.Skinny_mine.patterns)
            (render served);
          (match Client.last_meta c with
          | Some (hit, _) -> check_bool "first mine computed" false hit
          | None -> Alcotest.fail "no meta");
          (* The identical query again: served from the LRU. *)
          let served2 =
            Client.mine c { Protocol.l = 4; delta = 2; sigma = 2; closed_growth = false; family = Spm_core.Constraints.Skinny }
          in
          Alcotest.(check string) "cached answer identical"
            (render served) (render served2);
          (match Client.last_meta c with
          | Some (hit, _) -> check_bool "repeat is a cache hit" true hit
          | None -> Alcotest.fail "no meta");
          (* Containment of a submitted graph = direct subiso filter. *)
          let probe =
            match s.Store.patterns with
            | (m : Skinny_mine.mined) :: _ -> m.pattern
            | [] -> Alcotest.fail "corpus empty"
          in
          let naive =
            List.filter
              (fun (m : Skinny_mine.mined) ->
                Spm_pattern.Subiso.exists ~pattern:m.pattern ~target:probe)
              s.Store.patterns
          in
          Alcotest.(check string) "wire containment = direct subiso"
            (render naive)
            (render (Client.contains c probe));
          check_bool "containment found the probe itself" true (naive <> []);
          (* The whole data graph contains every mined pattern. *)
          check "all patterns embed in the data graph"
            (List.length s.Store.patterns)
            (List.length (Client.contains c g));
          (* Lookup filters. *)
          let looked =
            Client.lookup c
              { Protocol.min_support = Some 2; max_support = None;
                length = Some 4; labels = None }
          in
          Alcotest.(check string) "lookup l=4 s>=2 = whole corpus"
            (render s.Store.patterns) (render looked);
          let st = Client.stats c in
          check_bool "stats count this connection" true
            (st.Protocol.requests >= 6);
          check "exactly one cache hit" 1 st.Protocol.cache_hits;
          check "no errors" 0 st.Protocol.errors;
          check "resident size" (List.length s.Store.patterns)
            st.Protocol.store_patterns);
      (* Second connection: the cache survives across connections. *)
      Client.with_connection ~port (fun c ->
          let served =
            Client.mine c { Protocol.l = 4; delta = 2; sigma = 2; closed_growth = false; family = Spm_core.Constraints.Skinny }
          in
          Alcotest.(check string) "hit from a fresh connection"
            (render direct.Skinny_mine.patterns)
            (render served);
          match Client.last_meta c with
          | Some (hit, _) -> check_bool "cross-connection cache hit" true hit
          | None -> Alcotest.fail "no meta");
      Client.with_connection ~port Client.shutdown;
      check_bool "server marked stopping" true (Server.stopping srv))

(* A store saved to disk serves a fresh server without re-mining: the mine
   answer must come back instantly from the resident set (asserted by
   comparing against the direct result AND by the request being answerable
   with jobs=1 in negligible service time — no Stage I/II run). *)
let test_end_to_end_from_saved_store () =
  let _, direct = Lazy.force corpus in
  let s = corpus_store () in
  Testutil.with_temp_dir (fun dir ->
      let path = Testutil.temp_file_in dir "serve.spm" in
      Store.save path s;
      let srv = Server.create ~jobs:1 () in
      let fd, port = Server.listen ~port:0 () in
      let server_thread = Thread.create (fun () -> Server.serve srv fd) () in
      Fun.protect
        ~finally:(fun () -> Thread.join server_thread)
        (fun () ->
          Client.with_connection ~port (fun c ->
              let n = Client.load_store c path in
              check "loaded pattern count" (List.length s.Store.patterns) n;
              let served =
                Client.mine c
                  { Protocol.l = 4; delta = 2; sigma = 2; closed_growth = false; family = Spm_core.Constraints.Skinny }
              in
              Alcotest.(check string) "saved store serves the mined set"
                (render direct.Skinny_mine.patterns)
                (render served));
          Client.with_connection ~port Client.shutdown))

(* --- the neighborhood family over the wire (protocol v5) --- *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let nbr_family = Spm_core.Constraints.Neighborhood { center = None }

(* Label diversity keeps supports — and with them the overlapping-cluster
   pattern count — small; few labels at r = 2 blows up fast. *)
let nbr_graph =
  lazy (Gen.erdos_renyi (Gen.rng 4100) ~n:24 ~avg_degree:2.2 ~num_labels:8)

let nbr_mine g =
  Skinny_mine.mine
    ~config:{ Skinny_mine.Config.default with family = nbr_family }
    g ~l:0 ~delta:2 ~sigma:2

(* Old-protocol fallback: a skinny Mine still travels as the pre-v5 tag-2
   bytes, so v2 servers keep answering it; only the neighborhood Mine needs
   the v5 tag-11 request. *)
let test_neighborhood_wire_pins () =
  let skinny = Protocol.Mine (Protocol.mine_params ~l:3 ~delta:1 ~sigma:2 ()) in
  let nbr =
    Protocol.Mine
      (Protocol.mine_params ~family:nbr_family ~l:0 ~delta:2 ~sigma:2 ())
  in
  check "skinny Mine keeps tag 2" 2 (Char.code (Protocol.encode_request skinny).[0]);
  check "skinny Mine stays v2" 2 (Protocol.request_version skinny);
  check "neighborhood Mine is tag 11" 11
    (Char.code (Protocol.encode_request nbr).[0]);
  check "neighborhood Mine needs v5" 5 (Protocol.request_version nbr)

let test_neighborhood_end_to_end () =
  let g = Lazy.force nbr_graph in
  let direct = nbr_mine g in
  check_bool "direct mine is non-trivial" true
    (direct.Skinny_mine.patterns <> []);
  let srv = Server.create ~jobs:2 () in
  Server.set_graph srv g;
  let fd, port = Server.listen ~port:0 () in
  let server_thread = Thread.create (fun () -> Server.serve srv fd) () in
  Fun.protect
    ~finally:(fun () -> Thread.join server_thread)
    (fun () ->
      Client.with_connection ~port (fun c ->
          let params =
            Protocol.mine_params ~family:nbr_family ~l:0 ~delta:2 ~sigma:2 ()
          in
          let served = Client.mine c params in
          Alcotest.(check string) "wire neighborhood mine = direct mine"
            (render direct.Skinny_mine.patterns)
            (render served);
          (* Identical repeat: the LRU keys on the family too. *)
          ignore (Client.mine c params);
          (match Client.last_meta c with
          | Some (hit, _) -> check_bool "repeat is a cache hit" true hit
          | None -> Alcotest.fail "no meta"));
      Client.with_connection ~port Client.shutdown)

let test_neighborhood_update_refused () =
  let g = Lazy.force nbr_graph in
  let r = nbr_mine g in
  let s =
    Store.of_result ~family:nbr_family ~graph:g ~l:0 ~delta:2 ~sigma:2
      ~closed_growth:false r
  in
  let srv = Server.create ~jobs:1 () in
  Server.set_store srv s;
  (* Incremental repair is diameter-cluster-shaped: a neighborhood store
     refuses Update with a clean Error instead of repairing wrongly. *)
  (match
     (Server.handle srv (Protocol.Update (Protocol.update_params [])))
       .Protocol.payload
   with
  | Protocol.Error msg ->
    check_bool "error names the restriction" true
      (contains_sub msg "skinny-only")
  | _ -> Alcotest.fail "expected Error for Update on a neighborhood store");
  (* A malformed neighborhood request (l <> 0) earns an Error payload, not
     a dead connection or a crash. *)
  match
    (Server.handle srv
       (Protocol.Mine
          (Protocol.mine_params ~family:nbr_family ~l:2 ~delta:1 ~sigma:1 ())))
      .Protocol.payload
  with
  | Protocol.Error msg ->
    check_bool "error says l = 0" true (contains_sub msg "l = 0")
  | _ -> Alcotest.fail "expected Error for l <> 0 neighborhood Mine"

(* --- deadlines, cancellation, rude clients --- *)

(* A graph whose full mine takes minutes: deadline/cancel tests interrupt
   it rather than racing its completion. *)
let long_mine_graph =
  lazy (Gen.erdos_renyi (Gen.rng 48) ~n:4000 ~avg_degree:3.0 ~num_labels:4)

let long_mine_params =
  { Protocol.l = 4; delta = 2; sigma = 2; closed_growth = false; family = Spm_core.Constraints.Skinny }

let test_mine_timeout_in_process () =
  let srv = Server.create ~jobs:2 ~mine_timeout:0.2 () in
  Server.set_graph srv (Lazy.force long_mine_graph);
  let t0 = Unix.gettimeofday () in
  let resp = Server.handle srv (Protocol.Mine long_mine_params) in
  let wall = Unix.gettimeofday () -. t0 in
  check_bool "timeout status" true
    (resp.Protocol.status = Spm_engine.Run.Timeout);
  check_bool
    (Printf.sprintf "within 1s of the 0.2s deadline (took %.3fs)" wall)
    true (wall < 1.2);
  (match resp.Protocol.payload with
  | Protocol.Patterns _ -> ()
  | _ -> Alcotest.fail "expected Patterns (possibly empty prefix)");
  (* Truncated answers are never cached: the retry mines afresh. *)
  let again = Server.handle srv (Protocol.Mine long_mine_params) in
  check_bool "retry is not a cache hit" false again.Protocol.cache_hit;
  check_bool "retry times out too" true
    (again.Protocol.status = Spm_engine.Run.Timeout);
  (* The same server still answers: no restart needed after a timeout. *)
  match (Server.handle srv Protocol.Stats).Protocol.payload with
  | Protocol.Stats_reply s -> check "requests counted" 3 s.Protocol.requests
  | _ -> Alcotest.fail "expected Stats_reply"

let test_wire_progress_and_cancel () =
  let srv = Server.create ~jobs:2 () in
  Server.set_graph srv (Lazy.force long_mine_graph);
  let fd, port = Server.listen ~port:0 () in
  let server_thread = Thread.create (fun () -> Server.serve srv fd) () in
  Fun.protect
    ~finally:(fun () -> Thread.join server_thread)
    (fun () ->
      let miner_result = ref None in
      let miner =
        Thread.create
          (fun () ->
            Client.with_connection ~port (fun c ->
                let resp = Client.call c (Protocol.Mine long_mine_params) in
                miner_result := Some resp))
          ()
      in
      (* From a second connection, wait until the mine is observably in
         flight, then cancel it. *)
      Client.with_connection ~port (fun c ->
          let deadline = Unix.gettimeofday () +. 10.0 in
          let rec wait_running () =
            let p = Client.progress c in
            if p.Protocol.running then p
            else if Unix.gettimeofday () > deadline then
              Alcotest.fail "mine never became observable via Progress"
            else begin
              Thread.delay 0.01;
              wait_running ()
            end
          in
          let p = wait_running () in
          check_bool "progress counters advance" true
            (p.Protocol.candidates >= 0 && p.Protocol.elapsed_seconds >= 0.0);
          check_bool "cancel acknowledged" true (Client.cancel c);
          (* The miner's connection gets its answer promptly. *)
          Thread.join miner;
          (match !miner_result with
          | Some resp ->
            check_bool "mine reply is Cancelled" true
              (resp.Protocol.status = Spm_engine.Run.Cancelled);
            (match resp.Protocol.payload with
            | Protocol.Patterns _ -> ()
            | _ -> Alcotest.fail "expected Patterns from cancelled mine")
          | None -> Alcotest.fail "mining client never got a reply");
          (* Same server, same connection: still fully in service. *)
          Client.ping c;
          check_bool "no mine in flight anymore" false
            (Client.progress c).Protocol.running);
      Client.with_connection ~port Client.shutdown)

(* A client that sends a mine request and vanishes must not take the server
   down (SIGPIPE) — the next client gets served as if nothing happened. *)
let test_disconnect_mid_mine () =
  let srv = Server.create ~jobs:2 ~mine_timeout:0.3 () in
  Server.set_graph srv (Lazy.force long_mine_graph);
  let fd, port = Server.listen ~port:0 () in
  let server_thread = Thread.create (fun () -> Server.serve srv fd) () in
  Fun.protect
    ~finally:(fun () -> Thread.join server_thread)
    (fun () ->
      (* Raw socket: handshake, fire the mine request, slam the door. *)
      let raw = Unix.socket PF_INET SOCK_STREAM 0 in
      Unix.connect raw (ADDR_INET (Unix.inet_addr_loopback, port));
      Protocol.client_handshake raw;
      Protocol.write_frame raw
        (Protocol.encode_request (Protocol.Mine long_mine_params));
      Thread.delay 0.05;
      (* the server is now mining for a dead client *)
      Unix.close raw;
      (* The mine runs out its 0.3s budget, the reply write hits EPIPE, and
         the connection thread absorbs it. A fresh client must see a fully
         functional server. *)
      Client.with_connection ~port (fun c ->
          Client.ping c;
          let resp = Client.call c (Protocol.Mine long_mine_params) in
          check_bool "fresh mine after disconnect answered" true
            (resp.Protocol.status = Spm_engine.Run.Timeout);
          let s = Client.stats c in
          check_bool "server counted both mine requests" true
            (s.Protocol.requests >= 3));
      Client.with_connection ~port Client.shutdown;
      check_bool "server stopping" true (Server.stopping srv))

(* --- evolving graphs: protocol v3 --- *)

let test_protocol_v3_roundtrip () =
  let edits =
    [ Delta.Add_vertex 3; Delta.Add_edge (0, 7); Delta.Remove_edge (2, 5) ]
  in
  let reqs = [ Protocol.Update (Protocol.update_params edits); Protocol.Subscribe ] in
  List.iter
    (fun req ->
      check_bool "v3 request round trip" true
        (Protocol.decode_request (Protocol.encode_request req) = req);
      check "v3 verbs need v3" 3 (Protocol.request_version req);
      check_bool "v3 verbs not cacheable" false (Protocol.cacheable req))
    reqs;
  check "v2 verbs stay v2" 2 (Protocol.request_version Protocol.Ping);
  let s = corpus_store () in
  let u =
    {
      Protocol.new_version = 7;
      added = [ List.hd s.Store.patterns ];
      removed = [];
      repaired = 2;
      clusters = 9;
    }
  in
  let resp = Protocol.response ~seconds:0.125 (Protocol.Update_reply u) in
  (match (Protocol.decode_response (Protocol.encode_response resp)).payload with
  | Protocol.Update_reply u' ->
    check "new_version" u.Protocol.new_version u'.Protocol.new_version;
    check "repaired" u.Protocol.repaired u'.Protocol.repaired;
    check "clusters" u.Protocol.clusters u'.Protocol.clusters;
    Alcotest.(check string)
      "added patterns" (render u.Protocol.added) (render u'.Protocol.added);
    check "removed" 0 (List.length u'.Protocol.removed)
  | _ -> Alcotest.fail "expected Update_reply");
  let sub =
    {
      resp with
      Protocol.payload = Protocol.Subscribed 4;
    }
  in
  check_bool "Subscribed round trip" true
    ((Protocol.decode_response (Protocol.encode_response sub)).payload
    = Protocol.Subscribed 4)

(* An edit batch the corpus graph definitely accepts: one fresh edge. *)
let fresh_edge g =
  let n = Graph.n g in
  let rec go u v =
    if u >= n then Alcotest.fail "no fresh edge in corpus graph"
    else if v >= n then go (u + 1) (u + 2)
    else if not (Graph.has_edge g u v) then (u, v)
    else go u (v + 1)
  in
  go 0 1

(* Update over the wire: the subscriber sees the same diff the updater got,
   lookups serve the repaired set (byte-identical to a full re-mine of the
   edited graph), the LRU never leaks a pre-update answer, and a restarted
   server replays the journal from disk back to the latest version. *)
let test_update_subscribe_e2e () =
  let g, _ = Lazy.force corpus in
  let s = corpus_store () in
  Testutil.with_temp_dir (fun dir ->
      let path = Testutil.temp_file_in dir "evolving.spm" in
      Store.save path s;
      let srv = Server.create ~jobs:2 () in
      Server.set_store srv ~path (Store.load path);
      check "fresh store at version 0" 0 (Server.version srv);
      let fd, port = Server.listen ~port:0 () in
      let server_thread = Thread.create (fun () -> Server.serve srv fd) () in
      let u, v = fresh_edge g in
      let edits = [ Delta.Add_edge (u, v) ] in
      let expected =
        let dg = Delta.apply_all (Delta.of_graph g) edits in
        (Skinny_mine.mine
           ~config:{ Skinny_mine.Config.default with jobs = 2 }
           (Delta.snapshot dg) ~l:4 ~delta:2 ~sigma:2)
          .Skinny_mine.patterns
      in
      let subscriber = Client.connect ~port () in
      Fun.protect
        ~finally:(fun () -> Client.close subscriber)
        (fun () ->
          Fun.protect
            ~finally:(fun () -> Thread.join server_thread)
            (fun () ->
              check "subscribed at v0" 0 (Client.subscribe subscriber);
              Client.with_connection ~port (fun c ->
                  check "negotiated newest" Protocol.version
                    (Client.version c);
                  (* Prime the LRU with a pre-update answer. *)
                  let before =
                    Client.mine c
                      (Protocol.mine_params ~l:4 ~delta:2 ~sigma:2 ())
                  in
                  Alcotest.(check string) "pre-update mine = resident store"
                    (render s.Store.patterns) (render before);
                  let reply = Client.update c edits in
                  check "committed as v1" 1 reply.Protocol.new_version;
                  check "server at v1" 1 (Server.version srv);
                  check_bool "some clusters reused" true
                    (reply.Protocol.repaired < reply.Protocol.clusters);
                  (* The exact same Mine bytes must NOT hit the stale cache
                     entry: version-keying makes it a miss that re-mines the
                     edited graph. *)
                  let after =
                    Client.mine c
                      (Protocol.mine_params ~l:4 ~delta:2 ~sigma:2 ())
                  in
                  (match Client.last_meta c with
                  | Some (hit, _) ->
                    check_bool "post-update mine is not a cache hit" false hit
                  | None -> Alcotest.fail "no meta");
                  Alcotest.(check string) "post-update mine = edited graph"
                    (render expected) (render after);
                  (* Lookup serves the repaired resident set. *)
                  Alcotest.(check string) "lookup serves repaired patterns"
                    (render expected)
                    (render (Client.lookup c (Protocol.lookup_params ())));
                  (* The pushed diff is the one the updater saw. *)
                  match Client.next_diff subscriber with
                  | None -> Alcotest.fail "no pushed diff"
                  | Some pushed ->
                    check "pushed version" 1 pushed.Protocol.new_version;
                    Alcotest.(check string) "pushed added"
                      (render reply.Protocol.added)
                      (render pushed.Protocol.added);
                    Alcotest.(check string) "pushed removed"
                      (render reply.Protocol.removed)
                      (render pushed.Protocol.removed));
              Client.with_connection ~port Client.shutdown);
          (* Server gone: the subscriber reads EOF, not garbage. *)
          check_bool "diff stream closed on shutdown" true
            (Client.next_diff subscriber = None));
      (* The journal hit the disk: a fresh server replays it and resumes at
         v1 with the repaired pattern set. *)
      let reloaded = Store.load path in
      check "journal on disk" 1 (Store.latest_version reloaded);
      let srv2 = Server.create ~jobs:2 () in
      Server.set_store srv2 ~path reloaded;
      check "replayed to v1" 1 (Server.version srv2);
      match
        (Server.handle srv2 (Protocol.Lookup (Protocol.lookup_params ())))
          .Protocol.payload
      with
      | Protocol.Patterns ms ->
        Alcotest.(check string) "restart = edited-graph mine" (render expected)
          (render ms)
      | _ -> Alcotest.fail "expected Patterns")

(* A v2 greeting still works end to end, and v3-only verbs on that
   connection are refused rather than half-served. *)
let test_v2_connection_compat () =
  let s = corpus_store () in
  let srv = Server.create ~jobs:1 () in
  Server.set_store srv s;
  let fd, port = Server.listen ~port:0 () in
  let server_thread = Thread.create (fun () -> Server.serve srv fd) () in
  Fun.protect
    ~finally:(fun () ->
      Client.with_connection ~port Client.shutdown;
      Thread.join server_thread)
    (fun () ->
      let raw = Unix.socket PF_INET SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close raw with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect raw (ADDR_INET (Unix.inet_addr_loopback, port));
          Protocol.client_handshake ~version:2 raw;
          let round req =
            Protocol.write_frame raw (Protocol.encode_request req);
            match Protocol.read_frame raw with
            | Some frame -> Protocol.decode_response frame
            | None -> Alcotest.fail "no reply on v2 connection"
          in
          check_bool "v2 ping answered" true
            ((round Protocol.Ping).Protocol.payload = Protocol.Pong);
          (match
             (round (Protocol.Update (Protocol.update_params [])))
               .Protocol.payload
           with
          | Protocol.Error msg ->
            let mentions_v3 =
              let n = String.length msg in
              let rec scan i =
                i + 2 <= n && (String.sub msg i 2 = "v3" || scan (i + 1))
              in
              scan 0
            in
            check_bool "refusal names the version gap" true mentions_v3
          | _ -> Alcotest.fail "v3 verb served on a v2 connection");
          (* The refusal is per-request: the connection keeps working. *)
          check_bool "v2 connection survives the refusal" true
            ((round Protocol.Ping).Protocol.payload = Protocol.Pong)))

(* New client against an old (pre-v3) server: the fallback reconnect
   negotiates v2. Simulated with a minimal greeter that only knows
   "SKNYSRV2" and answers one Ping. *)
let test_client_falls_back_to_v2 () =
  let lfd, port = Server.listen ~port:0 () in
  let old_server () =
    let serve_one () =
      let conn, _ = Unix.accept lfd in
      let finish () = try Unix.close conn with Unix.Unix_error _ -> () in
      match
        let b = Bytes.create 8 in
        let rec fill off =
          if off < 8 then
            match Unix.read conn b off (8 - off) with
            | 0 -> raise Exit
            | k -> fill (off + k)
        in
        fill 0;
        Bytes.to_string b
      with
      | "SKNYSRV2" ->
        (* the one greeting an old build knows *)
        let rec all s off =
          if off < String.length s then
            all s (off + Unix.write_substring conn s off (String.length s - off))
        in
        all "SKNYSRV2" 0;
        (match Protocol.read_frame conn with
        | Some _ ->
          Protocol.write_frame conn
            (Protocol.encode_response (Protocol.response Protocol.Pong))
        | None -> ());
        finish ()
      | _ | (exception Exit) -> finish ()
    in
    (* The client walks down one version per connection: v5, v4 and v3
       attempts (closed unanswered), then the v2 fallback. *)
    serve_one ();
    serve_one ();
    serve_one ();
    serve_one ()
  in
  let th = Thread.create old_server () in
  Fun.protect
    ~finally:(fun () ->
      Thread.join th;
      try Unix.close lfd with Unix.Unix_error _ -> ())
    (fun () ->
      Client.with_connection ~port (fun c ->
          check "fell back to v2" 2 (Client.version c);
          Client.ping c))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let prop_lru_never_overflows =
  QCheck.Test.make ~name:"lru never exceeds capacity" ~count:50
    QCheck.(pair (int_range 1 6) (small_list small_nat))
    (fun (cap, keys) ->
      let c = Lru.create ~capacity:cap in
      List.iter (fun k -> Lru.add c k k) keys;
      Lru.length c <= cap
      && List.for_all
           (fun k -> match Lru.find c k with Some v -> v = k | None -> true)
           keys)

let () =
  Alcotest.run "server"
    [
      ( "lru",
        [
          Alcotest.test_case "basics" `Quick test_lru_basics;
          Alcotest.test_case "capacity one" `Quick test_lru_capacity_one;
          Alcotest.test_case "churn" `Quick test_lru_churn;
        ] );
      qsuite "lru-props" [ prop_lru_never_overflows ];
      ( "sig-index",
        [
          Alcotest.test_case "lookup filters" `Quick test_sig_index_lookup;
          Alcotest.test_case "containment pruning" `Quick
            test_sig_index_containment;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "round trips" `Quick test_protocol_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_garbage_rejected;
        ] );
      ( "dispatch",
        [ Alcotest.test_case "handle + cache + errors" `Quick test_handle_dispatch ] );
      ( "end-to-end",
        [
          Alcotest.test_case "ephemeral port server = library" `Quick
            test_end_to_end;
          Alcotest.test_case "saved store serves without re-mining" `Quick
            test_end_to_end_from_saved_store;
        ] );
      ( "neighborhood",
        [
          Alcotest.test_case "wire pins (tags and versions)" `Quick
            test_neighborhood_wire_pins;
          Alcotest.test_case "neighborhood mine over the wire = library"
            `Quick test_neighborhood_end_to_end;
          Alcotest.test_case "update refused; l <> 0 rejected" `Quick
            test_neighborhood_update_refused;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "mine timeout bounds service" `Quick
            test_mine_timeout_in_process;
          Alcotest.test_case "progress and cancel over the wire" `Quick
            test_wire_progress_and_cancel;
          Alcotest.test_case "client disconnect mid-mine" `Quick
            test_disconnect_mid_mine;
        ] );
      ( "evolving",
        [
          Alcotest.test_case "v3 codec round trips" `Quick
            test_protocol_v3_roundtrip;
          Alcotest.test_case "update + subscribe + journal replay" `Quick
            test_update_subscribe_e2e;
          Alcotest.test_case "v2 connection compat" `Quick
            test_v2_connection_compat;
          Alcotest.test_case "client falls back to v2 server" `Quick
            test_client_falls_back_to_v2;
        ] );
    ]
