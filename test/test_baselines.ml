(* Tests for the four baseline reimplementations: each must be sound on its
   own terms and exhibit the qualitative behaviour the SkinnyMine paper
   exploits (SpiderMine finds fat-not-skinny patterns; SUBDUE prefers small
   frequent substructures; SEuS verifies its summary estimates; ORIGAMI
   returns a sparse orthogonal sample of maximal patterns). *)

open Spm_graph
open Spm_pattern
open Spm_baselines

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Grow_util --- *)

let test_vertex_seeds () =
  let g = Graph.Builder.of_edges ~labels:[| 0; 0; 1 |] [ (0, 1); (1, 2) ] in
  let seeds = Grow_util.vertex_seeds g in
  check "two labels" 2 (List.length seeds);
  let l0 = List.assoc 0 (List.map (fun (l, s) -> (l, s)) seeds) in
  check "label-0 images" 2 (List.length l0.Grow_util.maps);
  check "vertex support" 2 (Grow_util.support g l0)

let test_edge_seeds () =
  let g = Graph.Builder.of_edges ~labels:[| 0; 0; 1 |] [ (0, 1); (1, 2) ] in
  let seeds = Grow_util.edge_seeds g in
  check "two edge patterns" 2 (List.length seeds);
  List.iter
    (fun s ->
      check_bool "maps read labels" true
        (List.for_all
           (fun m ->
             Graph.label g m.(0) = Graph.label s.Grow_util.pattern 0
             && Graph.label g m.(1) = Graph.label s.Grow_util.pattern 1)
           s.Grow_util.maps))
    seeds

let test_extensions_complete () =
  let g = Graph.Builder.of_edges ~labels:[| 0; 0; 0 |] [ (0, 1); (1, 2); (0, 2) ] in
  let edge = List.hd (Grow_util.edge_seeds g) in
  let exts = Grow_util.extensions g edge in
  (* From an edge in a triangle: one forward desc per endpoint + no closing
     (pattern has only 2 vertices, already adjacent). *)
  check_bool "has extensions" true (List.length exts >= 1);
  List.iter
    (fun st ->
      check_bool "extension maps valid" true
        (List.for_all
           (fun m ->
             Graph.fold_edges
               (fun u v acc -> acc && Graph.has_edge g m.(u) m.(v))
               st.Grow_util.pattern true)
           st.Grow_util.maps))
    exts

(* --- SpiderMine --- *)

let fat_and_skinny_graph seed =
  let st = Gen.rng seed in
  let bg = Gen.erdos_renyi st ~n:120 ~avg_degree:2.0 ~num_labels:12 in
  let b = Graph.Builder.of_graph bg in
  (* A long skinny pattern and a fat clique-ish pattern, both support 2. *)
  let skinny =
    Gen.random_skinny_pattern st ~backbone:10 ~delta:1 ~twigs:3 ~num_labels:12
  in
  let fat = Gen.random_connected_pattern st ~n:8 ~extra_edges:8 ~num_labels:12 in
  ignore (Gen.inject st b ~pattern:skinny ~copies:2 ());
  ignore (Gen.inject st b ~pattern:fat ~copies:2 ());
  (Graph.Builder.freeze b, skinny, fat)

let test_spider_mine_runs () =
  let g, _, _ = fat_and_skinny_graph 1 in
  let r =
    Spider_mine.mine ~rng:(Gen.rng 2) ~seeds:60 ~graph:g ~sigma:2 ~k:5 ()
  in
  check_bool "found spiders" true (r.Spider_mine.spiders_mined > 0);
  check_bool "at most k patterns" true (List.length r.Spider_mine.patterns <= 5);
  List.iter
    (fun (p, sup) ->
      check_bool "frequent" true (sup >= 2);
      check_bool "within d_max" true (Bfs.diameter p <= 4);
      check_bool "really embeds" true (Subiso.exists ~pattern:p ~target:g))
    r.Spider_mine.patterns

let test_spider_mine_misses_long_skinny () =
  let g, skinny, _ = fat_and_skinny_graph 3 in
  let r =
    Spider_mine.mine ~rng:(Gen.rng 4) ~seeds:80 ~graph:g ~sigma:2 ~k:10 ()
  in
  (* d_max = 4 < backbone 10: the long skinny pattern cannot appear. *)
  check_bool "long skinny pattern missed (by design)" false
    (List.exists (fun (p, _) -> Canon.iso p skinny) r.Spider_mine.patterns);
  check_bool "all reported diameters bounded" true
    (List.for_all (fun (p, _) -> Bfs.diameter p <= 4) r.Spider_mine.patterns)

(* --- SUBDUE --- *)

let test_subdue_prefers_frequent_small () =
  let st = Gen.rng 9 in
  let bg = Gen.erdos_renyi st ~n:100 ~avg_degree:1.2 ~num_labels:10 in
  let b = Graph.Builder.of_graph bg in
  (* A very frequent 2-edge motif. *)
  let motif = Pattern.of_path_labels [| 7; 8; 7 |] in
  ignore (Gen.inject st b ~pattern:motif ~copies:15 ());
  let g = Graph.Builder.freeze b in
  let r = Subdue.mine ~graph:g () in
  check_bool "nonempty" true (r.Subdue.best <> []);
  let top = List.hd r.Subdue.best in
  check_bool "top compresses" true (top.Subdue.compression > 0.0);
  check_bool "top is small and frequent" true
    (Pattern.size top.Subdue.pattern <= 4 && top.Subdue.instances >= 10)

let test_subdue_scores_are_sorted () =
  let st = Gen.rng 21 in
  let g = Gen.erdos_renyi st ~n:60 ~avg_degree:2.5 ~num_labels:3 in
  let r = Subdue.mine ~graph:g () in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      a.Subdue.compression >= b.Subdue.compression && sorted rest
    | _ -> true
  in
  check_bool "best list sorted" true (sorted r.Subdue.best)

(* --- SEuS --- *)

let test_seus_summary () =
  let g = Graph.Builder.of_edges ~labels:[| 0; 1; 0; 1 |] [ (0, 1); (2, 3); (1, 2) ] in
  let s = Seus.summary g in
  check "label pair (0,1)" 3 (Hashtbl.find s (0, 1));
  check_bool "no (0,0)" true (not (Hashtbl.mem s (0, 0)))

let test_seus_verified_supports () =
  let st = Gen.rng 13 in
  let g = Gen.erdos_renyi st ~n:50 ~avg_degree:2.0 ~num_labels:4 in
  let r = Seus.mine ~graph:g ~sigma:3 () in
  List.iter
    (fun (p, sup) ->
      check (Printf.sprintf "support of a %d-edge pattern" (Pattern.size p))
        (Support.single_graph p g) sup;
      check_bool "meets sigma" true (sup >= 3))
    r.Seus.patterns;
  check_bool "estimation prunes" true (r.Seus.verified <= r.Seus.candidates)

let test_seus_estimate_is_upper_bound () =
  (* The summary estimate never under-counts: if SEuS rejects at the summary
     level, the true support is below sigma too. Verify on a case where the
     estimate is exact: disjoint copies. *)
  let motif = Pattern.of_path_labels [| 1; 2; 3 |] in
  let b = Graph.Builder.create () in
  let st = Gen.rng 1 in
  ignore (Gen.inject st b ~pattern:motif ~copies:4 ());
  let g = Graph.Builder.freeze b in
  let r = Seus.mine ~graph:g ~sigma:4 () in
  check_bool "finds the motif" true
    (List.exists (fun (p, _) -> Canon.iso p motif) r.Seus.patterns)

(* --- ORIGAMI --- *)

let test_origami_similarity () =
  let p = Pattern.of_path_labels [| 0; 1; 2 |] in
  let q = Pattern.of_path_labels [| 0; 1; 2 |] in
  check_bool "identical" true (Origami.similarity p q = 1.0);
  let r = Pattern.of_path_labels [| 5; 6; 7 |] in
  check_bool "disjoint features" true (Origami.similarity p r = 0.0)

let test_origami_sample_properties () =
  let st = Gen.rng 17 in
  let db =
    List.init 6 (fun _ -> Gen.erdos_renyi st ~n:25 ~avg_degree:2.5 ~num_labels:3)
  in
  let r = Origami.mine ~rng:(Gen.rng 18) ~walks:30 ~db ~sigma:3 () in
  check_bool "found maximal patterns" true (r.Origami.maximal_found > 0);
  List.iter
    (fun (p, sup) ->
      check "transaction support correct" (Support.transaction p db) sup;
      check_bool "frequent" true (sup >= 3))
    r.Origami.patterns;
  (* Pairwise orthogonality. *)
  let rec pairs = function
    | [] -> true
    | (p, _) :: rest ->
      List.for_all (fun (q, _) -> Origami.similarity p q <= 0.5) rest
      && pairs rest
  in
  check_bool "alpha-orthogonal" true (pairs r.Origami.patterns)

let test_origami_maximality () =
  (* In a db of identical path graphs, the only maximal pattern is the path
     itself. *)
  let path = Pattern.of_path_labels [| 0; 1; 2; 3 |] in
  let db = [ path; path; path ] in
  let r = Origami.mine ~rng:(Gen.rng 5) ~walks:10 ~db ~sigma:3 () in
  check "one maximal pattern" 1 r.Origami.maximal_found;
  match r.Origami.patterns with
  | [ (p, 3) ] -> check_bool "it is the path" true (Canon.iso p path)
  | _ -> Alcotest.fail "expected exactly the path with support 3"

let () =
  Alcotest.run "baselines"
    [
      ( "grow_util",
        [
          Alcotest.test_case "vertex seeds" `Quick test_vertex_seeds;
          Alcotest.test_case "edge seeds" `Quick test_edge_seeds;
          Alcotest.test_case "extensions" `Quick test_extensions_complete;
        ] );
      ( "spider_mine",
        [
          Alcotest.test_case "runs and is sound" `Quick test_spider_mine_runs;
          Alcotest.test_case "misses long skinny" `Quick
            test_spider_mine_misses_long_skinny;
        ] );
      ( "subdue",
        [
          Alcotest.test_case "prefers frequent small" `Quick
            test_subdue_prefers_frequent_small;
          Alcotest.test_case "scores sorted" `Quick test_subdue_scores_are_sorted;
        ] );
      ( "seus",
        [
          Alcotest.test_case "summary" `Quick test_seus_summary;
          Alcotest.test_case "verified supports" `Quick test_seus_verified_supports;
          Alcotest.test_case "upper bound" `Quick test_seus_estimate_is_upper_bound;
        ] );
      ( "origami",
        [
          Alcotest.test_case "similarity" `Quick test_origami_similarity;
          Alcotest.test_case "sample properties" `Quick
            test_origami_sample_properties;
          Alcotest.test_case "maximality" `Quick test_origami_maximality;
        ] );
    ]
