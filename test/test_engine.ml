(* Tests for the multicore engine: the Pool primitive itself (ordering,
   empty batches, exception propagation, reuse after failure, map_reduce,
   slices) and the headline determinism guarantee — for any [jobs] value the
   miner returns the identical (pattern, support) list. *)

open Spm_graph
open Spm_pattern
open Spm_core
module Pool = Spm_engine.Pool
module Run = Spm_engine.Run

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

exception Boom of int

(* --- Pool unit tests --- *)

let test_pool_map_ordering () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let n = 1000 in
      let input = Array.init n Fun.id in
      let out = Pool.map pool (fun i -> i * i) input in
      Alcotest.(check (array int)) "squares in order"
        (Array.init n (fun i -> i * i))
        out;
      (* map_list preserves list order too. *)
      Alcotest.(check (list int)) "list order" [ 2; 4; 6 ]
        (Pool.map_list pool (fun x -> 2 * x) [ 1; 2; 3 ]))

let test_pool_empty_and_singleton () =
  Pool.with_pool ~jobs:3 (fun pool ->
      check "empty" 0 (Array.length (Pool.map pool succ [||]));
      Alcotest.(check (array int)) "singleton" [| 8 |] (Pool.map pool succ [| 7 |]));
  (* The serial pool needs no shutdown and behaves like Array.map. *)
  Alcotest.(check (array int)) "serial" [| 1; 2 |] (Pool.map Pool.serial succ [| 0; 1 |])

let test_pool_exception_propagation () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (match Pool.map pool (fun i -> if i = 37 then raise (Boom i) else i) (Array.init 100 Fun.id) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 37 -> ());
      (* The pool survives a failed batch and runs the next one correctly. *)
      let out = Pool.map pool succ (Array.init 50 Fun.id) in
      Alcotest.(check (array int)) "reused after failure"
        (Array.init 50 succ) out)

let test_pool_map_reduce () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let n = 500 in
      let sum =
        Pool.map_reduce pool
          ~map:(fun i -> i)
          ~combine:( + ) ~init:0
          (Array.init n Fun.id)
      in
      check "sum" (n * (n - 1) / 2) sum;
      (* Non-commutative combine: order must be task-index order. *)
      let cat =
        Pool.map_reduce pool ~map:string_of_int ~combine:( ^ ) ~init:""
          (Array.init 12 Fun.id)
      in
      Alcotest.(check string) "deterministic combine order" "01234567891011" cat)

let test_pool_slices () =
  let a = Array.init 10 Fun.id in
  let s = Pool.slices a ~pieces:3 in
  check "piece count" 3 (Array.length s);
  Alcotest.(check (array int)) "concat restores" a
    (Array.concat (Array.to_list s));
  (* More pieces than elements: no empty slices beyond the elements. *)
  let s1 = Pool.slices [| 1; 2 |] ~pieces:8 in
  check "short input" 2 (Array.length s1);
  check "empty input" 0 (Array.length (Pool.slices [||] ~pieces:4))

(* --- Run contexts --- *)

let test_run_basics () =
  let r = Run.create () in
  check_bool "fresh run not interrupted" false (Run.interrupted r);
  Alcotest.(check bool) "status ok" true (Run.status r = Run.Ok);
  Run.check r;
  (* never raises on a live run *)
  Run.tick r;
  Run.emit ~n:2 r;
  Run.set_level r 3;
  let p = Run.progress r in
  check "candidates" 1 p.Run.candidates;
  check "emitted" 2 p.Run.emitted;
  check "level" 3 p.Run.level;
  Run.cancel r;
  check_bool "cancelled" true (Run.interrupted r);
  Alcotest.(check bool) "status cancelled" true (Run.status r = Run.Cancelled);
  (match Run.check r with
  | () -> Alcotest.fail "expected Cancelled"
  | exception Run.Cancelled (Run.Cancelled, p) ->
    check "progress in exception" 1 p.Run.candidates
  | exception Run.Cancelled _ -> Alcotest.fail "wrong status in exception")

let test_run_budget_is_not_interruption () =
  let r = Run.create ~budget:2 () in
  Run.emit r;
  check_bool "under budget" false (Run.budget_exhausted r);
  Run.emit r;
  check_bool "at budget" true (Run.budget_exhausted r);
  check_bool "should stop" true (Run.should_stop r);
  (* A full budget is a natural finish, not an interruption. *)
  check_bool "not interrupted" false (Run.interrupted r);
  Alcotest.(check bool) "status still ok" true (Run.status r = Run.Ok);
  Run.check r (* must not raise *)

let test_run_fork () =
  let parent = Run.create () in
  let child = Run.fork ~budget:1 parent in
  (* Counters propagate upward; budgets do not. *)
  Run.tick child;
  Run.emit child;
  check "parent sees child ticks" 1 (Run.progress parent).Run.candidates;
  check "parent sees child emits" 1 (Run.progress parent).Run.emitted;
  check_bool "child budget local" true (Run.budget_exhausted child);
  check_bool "parent unbudgeted" false (Run.budget_exhausted parent);
  (* Cancellation flows downward through the parent chain. *)
  Run.cancel parent;
  check_bool "child observes parent cancel" true (Run.interrupted child);
  (* A deadline in the past interrupts immediately. *)
  let expired = Run.create ~timeout:0.0 () in
  check_bool "expired deadline" true (Run.interrupted expired);
  Alcotest.(check bool) "timeout status" true (Run.status expired = Run.Timeout)

let test_pool_run_cancellation () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let run = Run.create () in
      Run.cancel run;
      (match Pool.map ~run pool succ (Array.init 100 Fun.id) with
      | _ -> Alcotest.fail "expected Run.Cancelled"
      | exception Run.Cancelled (Run.Cancelled, _) -> ());
      (* The pool survives a cancelled batch and serves the next one. *)
      let out = Pool.map pool succ (Array.init 50 Fun.id) in
      Alcotest.(check (array int)) "reused after cancellation"
        (Array.init 50 succ) out;
      (* A live run does not perturb results. *)
      let live = Run.create () in
      Alcotest.(check (array int)) "live run transparent"
        (Array.init 50 succ)
        (Pool.map ~run:live pool succ (Array.init 50 Fun.id)))

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~jobs:3 () in
  check "jobs" 3 (Pool.jobs pool);
  ignore (Pool.map pool succ (Array.init 10 Fun.id));
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* serial is shutdown-free. *)
  Pool.shutdown Pool.serial

(* --- Determinism: parallel output = sequential output, bit for bit --- *)

let signature r =
  List.map
    (fun m -> (Canon.key m.Skinny_mine.pattern, m.Skinny_mine.support))
    r.Skinny_mine.patterns

let sig_testable = Alcotest.(list (pair string int))

let mine_jobs ?(closed_growth = false) g ~l ~delta ~sigma jobs =
  Skinny_mine.mine
    ~config:{ Skinny_mine.Config.default with closed_growth; jobs }
    g ~l ~delta ~sigma

(* Small graph, large label universe: plenty of distinct clusters for the
   scheduler without a combinatorial twig explosion. *)
let determinism_graph seed =
  let st = Gen.rng seed in
  let bg = Gen.erdos_renyi st ~n:120 ~avg_degree:2.0 ~num_labels:12 in
  let b = Graph.Builder.of_graph bg in
  for _ = 1 to 3 do
    let p =
      Gen.random_skinny_pattern st ~backbone:4 ~delta:1 ~twigs:2 ~num_labels:12
    in
    ignore (Gen.inject st b ~pattern:p ~copies:3 ())
  done;
  Graph.Builder.freeze b

let test_jobs_identical () =
  let g = determinism_graph 42 in
  let expected = signature (mine_jobs g ~l:4 ~delta:2 ~sigma:2 1) in
  check_bool "sequential run found something" true (expected <> []);
  List.iter
    (fun jobs ->
      Alcotest.check sig_testable
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (signature (mine_jobs g ~l:4 ~delta:2 ~sigma:2 jobs)))
    [ 2; 4 ]

let test_jobs_identical_closed_growth () =
  let g = determinism_graph 43 in
  let expected =
    signature (mine_jobs ~closed_growth:true g ~l:4 ~delta:2 ~sigma:2 1)
  in
  List.iter
    (fun jobs ->
      Alcotest.check sig_testable
        (Printf.sprintf "closed jobs=%d" jobs)
        expected
        (signature (mine_jobs ~closed_growth:true g ~l:4 ~delta:2 ~sigma:2 jobs)))
    [ 2; 4 ]

let test_jobs_identical_transactions () =
  let st = Gen.rng 44 in
  let db =
    List.init 6 (fun _ ->
        Gen.erdos_renyi st ~n:40 ~avg_degree:2.0 ~num_labels:3)
  in
  let run jobs =
    Skinny_mine.mine_transactions
      ~config:{ Skinny_mine.Config.default with jobs }
      db ~l:3 ~delta:1 ~sigma:2
  in
  let expected = signature (run 1) in
  List.iter
    (fun jobs ->
      Alcotest.check sig_testable
        (Printf.sprintf "tx jobs=%d" jobs)
        expected (signature (run jobs)))
    [ 2; 4 ]

(* Acceptance for the CSR substrate refactor: the FULL rendered output —
   pattern text, support, levels, diameter labels — is byte-equal across
   jobs values, stronger than the (key, support) signature above. *)
let render_result r =
  let b = Buffer.create 4096 in
  List.iter
    (fun (m : Skinny_mine.mined) ->
      Buffer.add_string b (Io.to_string m.pattern);
      Buffer.add_string b (Printf.sprintf "support %d\n" m.support);
      Buffer.add_string b
        (Printf.sprintf "levels %s\n"
           (String.concat " "
              (Array.to_list (Array.map string_of_int m.levels))));
      Buffer.add_string b
        (Printf.sprintf "diam %s\n\n"
           (String.concat " "
              (Array.to_list (Array.map string_of_int m.diameter_labels)))))
    r.Skinny_mine.patterns;
  Buffer.contents b

let test_jobs_byte_equal () =
  let g = determinism_graph 45 in
  let render jobs = render_result (mine_jobs g ~l:4 ~delta:2 ~sigma:2 jobs) in
  let s1 = render 1 in
  check_bool "sequential output nonempty" true (String.length s1 > 0);
  Alcotest.(check string) "jobs=4 byte-equal to jobs=1" s1 (render 4)

(* Threading an explicit (no-deadline) run through the miner must be
   invisible in the output, for any jobs value. *)
let test_run_threading_byte_equal () =
  let g = determinism_graph 46 in
  let baseline = render_result (mine_jobs g ~l:4 ~delta:2 ~sigma:2 1) in
  check_bool "baseline nonempty" true (String.length baseline > 0);
  List.iter
    (fun jobs ->
      let r =
        Skinny_mine.mine
          ~config:{ Skinny_mine.Config.default with jobs }
          ~run:(Run.create ()) g ~l:4 ~delta:2 ~sigma:2
      in
      Alcotest.(check bool)
        (Printf.sprintf "status ok, jobs=%d" jobs)
        true
        (r.Skinny_mine.stats.Skinny_mine.status = Run.Ok);
      Alcotest.(check string)
        (Printf.sprintf "run-threaded jobs=%d byte-equal" jobs)
        baseline (render_result r))
    [ 1; 4 ]

(* max_patterns now composes with jobs: the budgeted parallel mine returns
   the identical prefix the budgeted sequential mine does. *)
let test_budget_jobs_identical () =
  let g = determinism_graph 47 in
  let uncapped = mine_jobs g ~l:4 ~delta:2 ~sigma:2 1 in
  let total = List.length uncapped.Skinny_mine.patterns in
  check_bool "enough patterns to cap" true (total > 3);
  let cap = total - 2 in
  let capped jobs =
    Skinny_mine.mine
      ~config:
        { Skinny_mine.Config.default with max_patterns = Some cap; jobs }
      g ~l:4 ~delta:2 ~sigma:2
  in
  let seq = capped 1 in
  check "cap respected" cap (List.length seq.Skinny_mine.patterns);
  (* The budgeted output is a prefix of the unbudgeted emission order. *)
  let prefix =
    List.filteri (fun i _ -> i < cap) uncapped.Skinny_mine.patterns
  in
  Alcotest.(check string) "budget = prefix of uncapped"
    (render_result { uncapped with patterns = prefix })
    (render_result seq);
  Alcotest.(check string) "jobs=4 budget byte-equal to jobs=1"
    (render_result seq)
    (render_result (capped 4));
  check_bool "budget fill is a natural finish" true
    (seq.Skinny_mine.stats.Skinny_mine.status = Run.Ok)

(* An already-expired deadline: the miner returns Timeout immediately (well
   under a second), and the same process can mine again to completion. *)
let test_zero_deadline_times_out () =
  let st = Gen.rng 48 in
  let g = Gen.erdos_renyi st ~n:4000 ~avg_degree:3.0 ~num_labels:4 in
  List.iter
    (fun jobs ->
      let t0 = Unix.gettimeofday () in
      let r =
        Skinny_mine.mine
          ~config:{ Skinny_mine.Config.default with jobs }
          ~run:(Run.create ~timeout:0.0 ()) g ~l:4 ~delta:2 ~sigma:2
      in
      let wall = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "timeout status, jobs=%d" jobs)
        true
        (r.Skinny_mine.stats.Skinny_mine.status = Run.Timeout);
      check_bool
        (Printf.sprintf "returned within 1s of the deadline (took %.3fs)" wall)
        true (wall < 1.0))
    [ 1; 4 ];
  (* Follow-up mine in the same process, no deadline: completes normally. *)
  let g2 = determinism_graph 49 in
  let r2 = mine_jobs g2 ~l:4 ~delta:2 ~sigma:2 4 in
  check_bool "follow-up mine ok" true
    (r2.Skinny_mine.stats.Skinny_mine.status = Run.Ok)

(* Same contract through the plan-driven support path: the matching-plan
   executor polls the run at vertex-extension granularity, so even the
   closed-only configuration (plan existence checks in the post-filter on
   top of plan-counted support) observes an expired deadline immediately. *)
let test_zero_deadline_plan_driven () =
  let st = Gen.rng 50 in
  let g = Gen.erdos_renyi st ~n:4000 ~avg_degree:3.0 ~num_labels:4 in
  List.iter
    (fun jobs ->
      let t0 = Unix.gettimeofday () in
      let config =
        Skinny_mine.Config.(
          default |> with_jobs jobs |> with_closed_only true)
      in
      let r =
        Skinny_mine.mine ~config
          ~run:(Run.create ~timeout:0.0 ())
          g ~l:4 ~delta:2 ~sigma:2
      in
      let wall = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "timeout status, jobs=%d" jobs)
        true
        (r.Skinny_mine.stats.Skinny_mine.status = Run.Timeout);
      check_bool
        (Printf.sprintf "plan path returned within 1s (took %.3fs)" wall)
        true (wall < 1.0))
    [ 1; 4 ]

let prop_run_threading_transparent =
  QCheck.Test.make
    ~name:"no-deadline run threading never changes the mined output"
    ~count:10
    QCheck.(triple (int_range 8 20) (int_range 2 4) (oneofl [ 1; 4 ]))
    (fun (n, l, jobs) ->
      let st = Gen.rng ((n * 977) + (l * 7) + jobs) in
      let g = Gen.erdos_renyi st ~n ~avg_degree:2.3 ~num_labels:3 in
      let plain = signature (mine_jobs g ~l ~delta:2 ~sigma:1 1) in
      let threaded =
        signature
          (Skinny_mine.mine
             ~config:{ Skinny_mine.Config.default with jobs }
             ~run:(Run.create ()) g ~l ~delta:2 ~sigma:1)
      in
      plain = threaded)

let prop_parallel_equals_sequential =
  QCheck.Test.make
    ~name:"jobs=3 mines the identical (pattern, support) list as jobs=1"
    ~count:15
    QCheck.(pair (int_range 8 20) (int_range 2 4))
    (fun (n, l) ->
      let st = Gen.rng ((n * 131) + l) in
      let g = Gen.erdos_renyi st ~n ~avg_degree:2.3 ~num_labels:3 in
      let seq = signature (mine_jobs g ~l ~delta:2 ~sigma:1 1) in
      let par = signature (mine_jobs g ~l ~delta:2 ~sigma:1 3) in
      seq = par)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "engine"
    [
      ( "pool",
        [
          Alcotest.test_case "map ordering" `Quick test_pool_map_ordering;
          Alcotest.test_case "empty and singleton" `Quick
            test_pool_empty_and_singleton;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception_propagation;
          Alcotest.test_case "map_reduce" `Quick test_pool_map_reduce;
          Alcotest.test_case "slices" `Quick test_pool_slices;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_pool_shutdown_idempotent;
        ] );
      ( "run",
        [
          Alcotest.test_case "basics" `Quick test_run_basics;
          Alcotest.test_case "budget is not interruption" `Quick
            test_run_budget_is_not_interruption;
          Alcotest.test_case "fork and deadlines" `Quick test_run_fork;
          Alcotest.test_case "pool cancellation" `Quick
            test_pool_run_cancellation;
          Alcotest.test_case "zero deadline times out" `Quick
            test_zero_deadline_times_out;
          Alcotest.test_case "zero deadline, plan-driven path" `Quick
            test_zero_deadline_plan_driven;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs sweep" `Quick test_jobs_identical;
          Alcotest.test_case "jobs sweep, closed growth" `Quick
            test_jobs_identical_closed_growth;
          Alcotest.test_case "jobs sweep, transactions" `Quick
            test_jobs_identical_transactions;
          Alcotest.test_case "jobs 1 vs 4 byte-equal render" `Quick
            test_jobs_byte_equal;
          Alcotest.test_case "run threading byte-equal" `Quick
            test_run_threading_byte_equal;
          Alcotest.test_case "budget composes with jobs" `Quick
            test_budget_jobs_identical;
        ] );
      qsuite "props"
        [ prop_parallel_equals_sequential; prop_run_threading_transparent ];
    ]
