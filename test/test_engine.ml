(* Tests for the multicore engine: the Pool primitive itself (ordering,
   empty batches, exception propagation, reuse after failure, map_reduce,
   slices) and the headline determinism guarantee — for any [jobs] value the
   miner returns the identical (pattern, support) list. *)

open Spm_graph
open Spm_pattern
open Spm_core
module Pool = Spm_engine.Pool

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

exception Boom of int

(* --- Pool unit tests --- *)

let test_pool_map_ordering () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let n = 1000 in
      let input = Array.init n Fun.id in
      let out = Pool.map pool (fun i -> i * i) input in
      Alcotest.(check (array int)) "squares in order"
        (Array.init n (fun i -> i * i))
        out;
      (* map_list preserves list order too. *)
      Alcotest.(check (list int)) "list order" [ 2; 4; 6 ]
        (Pool.map_list pool (fun x -> 2 * x) [ 1; 2; 3 ]))

let test_pool_empty_and_singleton () =
  Pool.with_pool ~jobs:3 (fun pool ->
      check "empty" 0 (Array.length (Pool.map pool succ [||]));
      Alcotest.(check (array int)) "singleton" [| 8 |] (Pool.map pool succ [| 7 |]));
  (* The serial pool needs no shutdown and behaves like Array.map. *)
  Alcotest.(check (array int)) "serial" [| 1; 2 |] (Pool.map Pool.serial succ [| 0; 1 |])

let test_pool_exception_propagation () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (match Pool.map pool (fun i -> if i = 37 then raise (Boom i) else i) (Array.init 100 Fun.id) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 37 -> ());
      (* The pool survives a failed batch and runs the next one correctly. *)
      let out = Pool.map pool succ (Array.init 50 Fun.id) in
      Alcotest.(check (array int)) "reused after failure"
        (Array.init 50 succ) out)

let test_pool_map_reduce () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let n = 500 in
      let sum =
        Pool.map_reduce pool
          ~map:(fun i -> i)
          ~combine:( + ) ~init:0
          (Array.init n Fun.id)
      in
      check "sum" (n * (n - 1) / 2) sum;
      (* Non-commutative combine: order must be task-index order. *)
      let cat =
        Pool.map_reduce pool ~map:string_of_int ~combine:( ^ ) ~init:""
          (Array.init 12 Fun.id)
      in
      Alcotest.(check string) "deterministic combine order" "01234567891011" cat)

let test_pool_slices () =
  let a = Array.init 10 Fun.id in
  let s = Pool.slices a ~pieces:3 in
  check "piece count" 3 (Array.length s);
  Alcotest.(check (array int)) "concat restores" a
    (Array.concat (Array.to_list s));
  (* More pieces than elements: no empty slices beyond the elements. *)
  let s1 = Pool.slices [| 1; 2 |] ~pieces:8 in
  check "short input" 2 (Array.length s1);
  check "empty input" 0 (Array.length (Pool.slices [||] ~pieces:4))

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~jobs:3 () in
  check "jobs" 3 (Pool.jobs pool);
  ignore (Pool.map pool succ (Array.init 10 Fun.id));
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* serial is shutdown-free. *)
  Pool.shutdown Pool.serial

(* --- Determinism: parallel output = sequential output, bit for bit --- *)

let signature r =
  List.map
    (fun m -> (Canon.key m.Skinny_mine.pattern, m.Skinny_mine.support))
    r.Skinny_mine.patterns

let sig_testable = Alcotest.(list (pair string int))

let mine_jobs ?(closed_growth = false) g ~l ~delta ~sigma jobs =
  Skinny_mine.mine
    ~config:{ Skinny_mine.Config.default with closed_growth; jobs }
    g ~l ~delta ~sigma

(* Small graph, large label universe: plenty of distinct clusters for the
   scheduler without a combinatorial twig explosion. *)
let determinism_graph seed =
  let st = Gen.rng seed in
  let bg = Gen.erdos_renyi st ~n:120 ~avg_degree:2.0 ~num_labels:12 in
  let b = Graph.Builder.of_graph bg in
  for _ = 1 to 3 do
    let p =
      Gen.random_skinny_pattern st ~backbone:4 ~delta:1 ~twigs:2 ~num_labels:12
    in
    ignore (Gen.inject st b ~pattern:p ~copies:3 ())
  done;
  Graph.Builder.freeze b

let test_jobs_identical () =
  let g = determinism_graph 42 in
  let expected = signature (mine_jobs g ~l:4 ~delta:2 ~sigma:2 1) in
  check_bool "sequential run found something" true (expected <> []);
  List.iter
    (fun jobs ->
      Alcotest.check sig_testable
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (signature (mine_jobs g ~l:4 ~delta:2 ~sigma:2 jobs)))
    [ 2; 4 ]

let test_jobs_identical_closed_growth () =
  let g = determinism_graph 43 in
  let expected =
    signature (mine_jobs ~closed_growth:true g ~l:4 ~delta:2 ~sigma:2 1)
  in
  List.iter
    (fun jobs ->
      Alcotest.check sig_testable
        (Printf.sprintf "closed jobs=%d" jobs)
        expected
        (signature (mine_jobs ~closed_growth:true g ~l:4 ~delta:2 ~sigma:2 jobs)))
    [ 2; 4 ]

let test_jobs_identical_transactions () =
  let st = Gen.rng 44 in
  let db =
    List.init 6 (fun _ ->
        Gen.erdos_renyi st ~n:40 ~avg_degree:2.0 ~num_labels:3)
  in
  let run jobs =
    Skinny_mine.mine_transactions
      ~config:{ Skinny_mine.Config.default with jobs }
      db ~l:3 ~delta:1 ~sigma:2
  in
  let expected = signature (run 1) in
  List.iter
    (fun jobs ->
      Alcotest.check sig_testable
        (Printf.sprintf "tx jobs=%d" jobs)
        expected (signature (run jobs)))
    [ 2; 4 ]

(* Acceptance for the CSR substrate refactor: the FULL rendered output —
   pattern text, support, levels, diameter labels — is byte-equal across
   jobs values, stronger than the (key, support) signature above. *)
let render_result r =
  let b = Buffer.create 4096 in
  List.iter
    (fun (m : Skinny_mine.mined) ->
      Buffer.add_string b (Io.to_string m.pattern);
      Buffer.add_string b (Printf.sprintf "support %d\n" m.support);
      Buffer.add_string b
        (Printf.sprintf "levels %s\n"
           (String.concat " "
              (Array.to_list (Array.map string_of_int m.levels))));
      Buffer.add_string b
        (Printf.sprintf "diam %s\n\n"
           (String.concat " "
              (Array.to_list (Array.map string_of_int m.diameter_labels)))))
    r.Skinny_mine.patterns;
  Buffer.contents b

let test_jobs_byte_equal () =
  let g = determinism_graph 45 in
  let render jobs = render_result (mine_jobs g ~l:4 ~delta:2 ~sigma:2 jobs) in
  let s1 = render 1 in
  check_bool "sequential output nonempty" true (String.length s1 > 0);
  Alcotest.(check string) "jobs=4 byte-equal to jobs=1" s1 (render 4)

let prop_parallel_equals_sequential =
  QCheck.Test.make
    ~name:"jobs=3 mines the identical (pattern, support) list as jobs=1"
    ~count:15
    QCheck.(pair (int_range 8 20) (int_range 2 4))
    (fun (n, l) ->
      let st = Gen.rng ((n * 131) + l) in
      let g = Gen.erdos_renyi st ~n ~avg_degree:2.3 ~num_labels:3 in
      let seq = signature (mine_jobs g ~l ~delta:2 ~sigma:1 1) in
      let par = signature (mine_jobs g ~l ~delta:2 ~sigma:1 3) in
      seq = par)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "engine"
    [
      ( "pool",
        [
          Alcotest.test_case "map ordering" `Quick test_pool_map_ordering;
          Alcotest.test_case "empty and singleton" `Quick
            test_pool_empty_and_singleton;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception_propagation;
          Alcotest.test_case "map_reduce" `Quick test_pool_map_reduce;
          Alcotest.test_case "slices" `Quick test_pool_slices;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_pool_shutdown_idempotent;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs sweep" `Quick test_jobs_identical;
          Alcotest.test_case "jobs sweep, closed growth" `Quick
            test_jobs_identical_closed_growth;
          Alcotest.test_case "jobs sweep, transactions" `Quick
            test_jobs_identical_transactions;
          Alcotest.test_case "jobs 1 vs 4 byte-equal render" `Quick
            test_jobs_byte_equal;
        ] );
      qsuite "props" [ prop_parallel_equals_sequential ];
    ]
